"""Backend-parity harness for the ``repro.api`` Session facade.

The acceptance surface of the API redesign:

- **Parity**: one scenario suite (sweep records, Pareto front, cheapest
  config, point lookups, the scalar fast path, ambiguous-axis errors)
  runs against a :class:`~repro.api.LocalBackend` and a live
  :class:`~repro.api.RemoteBackend` and must produce identical payloads
  to 1e-9 relative — the dense arrays bit-identically, since JSON
  shortest-repr round-trips float64 exactly.
- **One exception hierarchy**: every failure mode derives from
  :class:`~repro.errors.ReproError`, and the ambiguous-axis error names
  its axis identically on both backends.
- **Keep-alive**: a remote session reuses one connection across
  requests, observable in the service's ``/stats`` counters.
- **Schema negotiation**: payloads are stamped with ``schema_version``;
  an unsupported requested version is a structured 400.
- **GridBuilder**: fluent spellings canonicalize to the same
  :class:`~repro.core.dse.SweepGrid` + fingerprint as the hand-built
  grid, and invalid axes fail at the call site.
- **Facade purity**: the CLI's design-space commands import only
  ``repro.api`` — never ``sweep_grid``/``ServiceClient`` directly.

No pytest-asyncio in the image: the remote service runs on its own
event-loop thread (module-scoped), and sessions talk to it through the
blocking keep-alive client exactly as production callers do.
"""

import asyncio
import inspect
import json
import threading

import numpy as np
import pytest

from repro.api import (
    PAYLOAD_SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    AmbiguousAxisError,
    BackendUnavailableError,
    Grid,
    InfeasibleQueryError,
    LocalBackend,
    RemoteBackend,
    ReproError,
    ServiceError,
    Session,
    SweepGrid,
    as_sweep_grid,
    sweep_fingerprint,
)
from repro.core.dse import (
    DesignPoint,
    SweepResult,
    design_space,
    pareto_front,
    pareto_frontier,
    smallest_scale_for_fps,
)
from repro.gpu.baseline import FHD_PIXELS
from repro.service import SweepService, start_http_server
from repro.service.client import SyncServiceClient, request_json

RTOL = 1e-9

#: the shared parity design space: two workload axes + three
#: architecture axes, 96 points — every query kind has something to bite
PARITY_GRID = SweepGrid(
    apps=("nerf", "gia"),
    scale_factors=(8, 16, 32, 64),
    clocks_ghz=(0.8, 1.2, 1.695),
    grid_sram_kb=(512, 1024),
    n_batches=(8, 16),
)


# ---------------------------------------------------------------------------
# live service + sessions
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def live_service():
    """A real HTTP sweep service on its own event-loop thread."""
    started = threading.Event()
    holder = {}

    def serve():
        async def main():
            service = SweepService(engine="vectorized")
            server = await start_http_server(service, "127.0.0.1", 0)
            holder["port"] = server.port
            holder["service"] = service
            holder["server"] = server
            holder["stop"] = asyncio.Event()
            holder["loop"] = asyncio.get_running_loop()
            started.set()
            await holder["stop"].wait()
            await server.close()

        asyncio.run(main())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert started.wait(timeout=10)
    yield holder
    holder["loop"].call_soon_threadsafe(holder["stop"].set)
    thread.join(timeout=10)
    assert not thread.is_alive()


@pytest.fixture
def remote_session(live_service):
    session = Session.remote(port=live_service["port"])
    yield session
    session.close()


@pytest.fixture
def local_session():
    return Session.local(engine="vectorized")


@pytest.fixture(scope="module")
def distributed_session():
    """A live 2-worker shard cluster behind the Session facade."""
    session = Session.distributed(workers=2)
    yield session
    session.close()


# ---------------------------------------------------------------------------
# the scenario suite (each returns a JSON-comparable payload)
# ---------------------------------------------------------------------------


def scenario_sweep_summary(session):
    sweep = session.sweep(PARITY_GRID)
    return {"grid": sweep.grid.to_dict(), "shape": list(sweep.grid.shape),
            "size": sweep.size}


def scenario_records(session):
    return session.sweep(PARITY_GRID).records(limit=24)


def scenario_pareto_average(session):
    return [p.to_dict() for p in session.sweep(PARITY_GRID).pareto()]


def scenario_pareto_per_app(session):
    return [p.to_dict() for p in session.sweep(PARITY_GRID).pareto(app="nerf")]


def scenario_cheapest(session):
    return session.sweep(PARITY_GRID).cheapest(app="nerf", fps=60.0).to_dict()


def scenario_cheapest_unreachable(session):
    """Infeasible cheapest: the identical structured error, every backend."""
    with pytest.raises(InfeasibleQueryError) as excinfo:
        session.sweep(PARITY_GRID).cheapest(app="gia", fps=10.0**9)
    exc = excinfo.value
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "app": exc.app,
        "fps": exc.fps,
        "n_pixels": exc.n_pixels,
        "scheme": exc.scheme,
        "best_fps": exc.best_fps,
    }


def scenario_grid_point(session):
    point = session.sweep(PARITY_GRID).point(
        app="gia", scale_factor=16, clock_ghz=1.2, grid_sram_kb=512,
        n_batches=8,
    )
    return {"accelerated_ms": point.accelerated_ms,
            "baseline_ms": point.baseline_ms,
            "speedup": point.speedup, "fps": point.fps}


def scenario_scalar_point(session):
    point = session.point(app="nerf", scheme="multi_res_hashgrid",
                          scale_factor=8, n_pixels=FHD_PIXELS)
    return {"accelerated_ms": point.accelerated_ms,
            "baseline_ms": point.baseline_ms, "speedup": point.speedup}


SCENARIOS = {
    "sweep_summary": scenario_sweep_summary,
    "records": scenario_records,
    "pareto_average": scenario_pareto_average,
    "pareto_per_app": scenario_pareto_per_app,
    "cheapest": scenario_cheapest,
    "cheapest_unreachable": scenario_cheapest_unreachable,
    "grid_point": scenario_grid_point,
    "scalar_point": scenario_scalar_point,
}


def assert_payloads_equal(local, remote, path="$"):
    """Recursive structural equality with 1e-9 relative floats."""
    assert type(local) is type(remote), f"{path}: {type(local)} vs {type(remote)}"
    if isinstance(local, dict):
        assert local.keys() == remote.keys(), f"{path}: key sets differ"
        for key in local:
            assert_payloads_equal(local[key], remote[key], f"{path}.{key}")
    elif isinstance(local, (list, tuple)):
        assert len(local) == len(remote), f"{path}: lengths differ"
        for i, (a, b) in enumerate(zip(local, remote)):
            assert_payloads_equal(a, b, f"{path}[{i}]")
    elif isinstance(local, float):
        assert local == pytest.approx(remote, rel=RTOL), f"{path} differs"
    else:
        assert local == remote, f"{path}: {local!r} != {remote!r}"


class TestBackendParity:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_payloads_identical(
        self, name, local_session, remote_session
    ):
        scenario = SCENARIOS[name]
        assert_payloads_equal(scenario(local_session), scenario(remote_session))

    def test_dense_arrays_bit_identical(self, local_session, remote_session):
        local = local_session.sweep(PARITY_GRID).result
        remote = remote_session.sweep(PARITY_GRID).result
        assert remote.grid == local.grid
        for name in ("baseline_ms", "accelerated_ms", "amdahl_bound",
                     "area_overhead_pct", "power_overhead_pct"):
            np.testing.assert_allclose(
                getattr(remote, name), getattr(local, name), rtol=RTOL, atol=0.0
            )
            # JSON shortest-repr round-trips float64 exactly
            np.testing.assert_array_equal(
                getattr(remote, name), getattr(local, name)
            )

    def test_ambiguous_axis_identical_on_both_backends(
        self, local_session, remote_session
    ):
        errors = []
        for session in (local_session, remote_session):
            with pytest.raises(AmbiguousAxisError) as excinfo:
                session.sweep(PARITY_GRID).point(app="nerf", scale_factor=8)
            errors.append(excinfo.value)
        local_err, remote_err = errors
        assert local_err.axis == remote_err.axis == "clock_ghz"
        assert local_err.values == remote_err.values
        assert str(local_err) == str(remote_err)
        for err in errors:
            assert isinstance(err, ReproError)
            assert isinstance(err, KeyError)  # legacy contract

    def test_respelled_grid_is_one_cache_entry_on_both_backends(
        self, local_session, remote_session, live_service
    ):
        respelled = SweepGrid(
            apps=tuple(reversed(PARITY_GRID.apps)),
            scale_factors=(64, 8, 32, 16, 8),
            clocks_ghz=tuple(reversed(PARITY_GRID.clocks_ghz)),
            grid_sram_kb=PARITY_GRID.grid_sram_kb,
            n_batches=PARITY_GRID.n_batches,
        )
        # local: the second spelling hits the sweep memo, not a re-eval
        first = local_session.sweep(PARITY_GRID)
        hits_before = local_session.stats()["cache"]["hits"]
        second = local_session.sweep(respelled)
        assert second.result is first.result
        assert local_session.stats()["cache"]["hits"] == hits_before + 1
        # remote: the service evaluates the fingerprint exactly once
        service = live_service["service"]
        remote_session.sweep(PARITY_GRID)
        evaluations = service.evaluations
        remote_session.sweep(respelled)
        assert service.evaluations == evaluations

    def test_scalar_point_matches_grid_point(self, local_session):
        scalar = local_session.point(app="nerf", scale_factor=8)
        grid = local_session.sweep(
            SweepGrid(apps=("nerf",), scale_factors=(8,))
        ).point()
        assert scalar.accelerated_ms == pytest.approx(
            grid.accelerated_ms, rel=RTOL
        )


class TestDistributedBackendParity:
    """The same scenario suite, local vs a live 2-worker shard cluster."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_payloads_identical(
        self, name, local_session, distributed_session
    ):
        scenario = SCENARIOS[name]
        assert_payloads_equal(
            scenario(local_session), scenario(distributed_session)
        )

    def test_dense_arrays_bit_identical(
        self, local_session, distributed_session
    ):
        local = local_session.sweep(PARITY_GRID).result
        distributed = distributed_session.sweep(PARITY_GRID).result
        assert distributed.grid == local.grid
        assert distributed.engine == "cluster"
        for name in ("baseline_ms", "accelerated_ms", "amdahl_bound",
                     "area_overhead_pct", "power_overhead_pct"):
            np.testing.assert_allclose(
                getattr(distributed, name), getattr(local, name),
                rtol=RTOL, atol=0.0,
            )
            # pickled float64 blocks round-trip exactly
            np.testing.assert_array_equal(
                getattr(distributed, name), getattr(local, name)
            )

    def test_ambiguous_axis_identical_on_both_backends(
        self, local_session, distributed_session
    ):
        errors = []
        for session in (local_session, distributed_session):
            with pytest.raises(AmbiguousAxisError) as excinfo:
                session.sweep(PARITY_GRID).point(app="nerf", scale_factor=8)
            errors.append(excinfo.value)
        local_err, distributed_err = errors
        assert local_err.axis == distributed_err.axis == "clock_ghz"
        assert local_err.values == distributed_err.values
        assert str(local_err) == str(distributed_err)
        for err in errors:
            assert isinstance(err, ReproError)
            assert isinstance(err, KeyError)  # legacy contract

    def test_respelled_grid_is_one_evaluation(self, distributed_session):
        respelled = SweepGrid(
            apps=tuple(reversed(PARITY_GRID.apps)),
            scale_factors=(64, 8, 32, 16, 8),
            clocks_ghz=tuple(reversed(PARITY_GRID.clocks_ghz)),
            grid_sram_kb=PARITY_GRID.grid_sram_kb,
            n_batches=PARITY_GRID.n_batches,
        )
        backend = distributed_session.backend
        distributed_session.sweep(PARITY_GRID)
        evaluations = backend.service.evaluations
        distributed_session.sweep(respelled)
        assert backend.service.evaluations == evaluations


# ---------------------------------------------------------------------------
# the registry extension axes, across every backend
# ---------------------------------------------------------------------------

#: a hash-grid design space: the new encoding axis swept through the
#: registry, answered via local, remote and cluster execution alike
HASHGRID_PARITY_GRID = SweepGrid(
    apps=("nerf",),
    scale_factors=(8, 32),
    gridtypes=("hash",),
    log2_hashmap_sizes=(14, 19, 22),
)


class TestHashGridAxisParity:
    """Sweeping ``log2_hashmap_size`` answers identically everywhere."""

    def test_dense_arrays_bit_identical_on_all_backends(
        self, local_session, remote_session, distributed_session
    ):
        local = local_session.sweep(HASHGRID_PARITY_GRID).result
        assert local.accelerated_ms.ndim == 11  # extended layout
        for session in (remote_session, distributed_session):
            other = session.sweep(HASHGRID_PARITY_GRID).result
            assert other.grid == local.grid
            for name in ("baseline_ms", "accelerated_ms", "speedup",
                         "area_overhead_pct", "train_steps_per_s"):
                np.testing.assert_array_equal(
                    getattr(other, name), getattr(local, name), err_msg=name
                )

    def test_swept_hashmap_axis_must_be_selected(
        self, local_session, remote_session, distributed_session
    ):
        errors = []
        for session in (local_session, remote_session, distributed_session):
            sweep = session.sweep(HASHGRID_PARITY_GRID)
            with pytest.raises(AmbiguousAxisError) as excinfo:
                sweep.point(app="nerf", scale_factor=8)
            errors.append(excinfo.value)
        assert {e.axis for e in errors} == {"log2_hashmap_size"}
        assert len({str(e) for e in errors}) == 1

    def test_point_and_pareto_agree_per_table_size(
        self, local_session, remote_session, distributed_session
    ):
        payloads = []
        for session in (local_session, remote_session, distributed_session):
            sweep = session.sweep(HASHGRID_PARITY_GRID)
            point = sweep.point(
                app="nerf", scale_factor=8, log2_hashmap_size=14
            )
            payloads.append({
                "point": {"accelerated_ms": point.accelerated_ms,
                          "baseline_ms": point.baseline_ms,
                          "speedup": point.speedup},
                "front": [
                    p.to_dict() for p in sweep.pareto(log2_hashmap_size=19)
                ],
            })
        assert_payloads_equal(payloads[0], payloads[1])
        assert_payloads_equal(payloads[0], payloads[2])

    def test_cheapest_train_rate_parity(
        self, local_session, remote_session, distributed_session
    ):
        hits, errors = [], []
        for session in (local_session, remote_session, distributed_session):
            sweep = session.sweep(HASHGRID_PARITY_GRID)
            hits.append(sweep.cheapest(
                app="nerf", train_steps_per_s=1.0, log2_hashmap_size=19
            ).to_dict())
            with pytest.raises(InfeasibleQueryError) as excinfo:
                sweep.cheapest(
                    app="nerf", train_steps_per_s=10.0**12,
                    log2_hashmap_size=19,
                )
            errors.append(excinfo.value)
        assert_payloads_equal(hits[0], hits[1])
        assert_payloads_equal(hits[0], hits[2])
        assert len({str(e) for e in errors}) == 1
        assert {e.steps_per_s for e in errors} == {10.0**12}
        assert len({e.best_rate for e in errors}) == 1


# ---------------------------------------------------------------------------
# keep-alive connection reuse
# ---------------------------------------------------------------------------


class TestKeepAlive:
    def test_remote_session_reuses_one_connection(
        self, live_service, remote_session
    ):
        service = live_service["service"]
        before = dict(service.http)
        sweep = remote_session.sweep(PARITY_GRID)
        sweep2 = remote_session.sweep(PARITY_GRID)
        remote_session.point(app="nerf", scale_factor=8)
        remote_session.stats()
        after = remote_session.stats()["http"]
        assert sweep2.size == sweep.size
        # five requests, one connection: four+ reuses counted server-side
        assert after["connections"] == before["connections"] + 1
        assert after["reused"] >= before["reused"] + 4
        client = remote_session.backend._client
        assert client.connections_opened == 1
        assert client.reuses >= 4

    def test_stale_connection_reconnects_transparently(self, live_service):
        session = Session.remote(port=live_service["port"])
        try:
            session.stats()
            # simulate an idle drop: the *server* closes the keep-alive
            # connection between requests (the retryable signature)
            dropped = threading.Event()
            server = live_service["server"]

            def drop():
                for writer in list(server._connections):
                    writer.close()
                dropped.set()

            live_service["loop"].call_soon_threadsafe(drop)
            assert dropped.wait(timeout=5)
            stats = session.stats()  # must reconnect, not raise
            assert stats["engine"] == "vectorized"
            assert session.backend._client.connections_opened == 2
        finally:
            session.close()

    def test_async_client_counts_reuses(self, live_service):
        from repro.service.client import ServiceClient

        async def run():
            async with ServiceClient("127.0.0.1", live_service["port"]) as c:
                await c.healthz()
                await c.stats()
                await c.stats()
                return c.connections_opened, c.reuses

        opened, reuses = asyncio.run(run())
        assert opened == 1
        assert reuses == 2

    def test_async_client_serializes_concurrent_requests(self, live_service):
        """gather() on one keep-alive client must not interleave streams."""
        from repro.service.client import ServiceClient

        async def run():
            async with ServiceClient("127.0.0.1", live_service["port"]) as c:
                return await asyncio.gather(
                    *(c.stats() for _ in range(8)), c.healthz()
                )

        *stats, health = asyncio.run(run())
        assert health["status"] == "healthy"
        assert all(s["engine"] == "vectorized" for s in stats)

    def test_unavailable_backend_raises_structured_error(self):
        session = Session.remote(port=1)  # nothing listens on port 1
        with pytest.raises(BackendUnavailableError) as excinfo:
            session.stats()
        assert excinfo.value.port == 1
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, ConnectionError)  # legacy contract


# ---------------------------------------------------------------------------
# payload schema versioning
# ---------------------------------------------------------------------------


class TestSchemaVersion:
    def test_payload_round_trip_is_stamped(self, local_session):
        payload = local_session.sweep(PARITY_GRID).result.to_payload()
        assert payload["schema_version"] == PAYLOAD_SCHEMA_VERSION
        rebuilt = SweepResult.from_payload(payload)
        np.testing.assert_array_equal(
            rebuilt.accelerated_ms,
            local_session.sweep(PARITY_GRID).result.accelerated_ms,
        )

    def test_unstamped_payload_reads_as_v1(self, local_session):
        payload = local_session.sweep(PARITY_GRID).result.to_payload()
        del payload["schema_version"]
        rebuilt = SweepResult.from_payload(payload)
        assert rebuilt.grid == PARITY_GRID.normalized().resolve()

    def test_unsupported_payload_version_rejected(self, local_session):
        payload = local_session.sweep(PARITY_GRID).result.to_payload()
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="unsupported payload schema"):
            SweepResult.from_payload(payload)

    def test_server_negotiates_schema_version(self, live_service):
        port = live_service["port"]
        with SyncServiceClient(port=port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.request(
                    "POST", "/sweep",
                    {"grid": {"apps": ["nerf"]}, "schema_version": 99},
                )
        assert excinfo.value.status == 400
        assert excinfo.value.code == "unsupported-schema"
        assert excinfo.value.details["supported"] == list(
            SUPPORTED_SCHEMA_VERSIONS
        )

    def test_every_response_envelope_is_stamped(self, live_service):
        port = live_service["port"]
        status, body = request_json("127.0.0.1", port, "GET", "/healthz")
        assert status == 200
        assert body["schema_version"] == PAYLOAD_SCHEMA_VERSION
        status, body = request_json("127.0.0.1", port, "POST", "/nonsense", {})
        assert status == 404
        assert body["schema_version"] == PAYLOAD_SCHEMA_VERSION


# ---------------------------------------------------------------------------
# the fluent GridBuilder
# ---------------------------------------------------------------------------


class TestGridBuilder:
    def test_fluent_spelling_canonicalizes_to_sweep_grid(self):
        built = (
            Grid()
            .app("nerf", "gia")
            .scheme("multi_res_hashgrid")
            .scale(8, 16, 32, 64)
            .clock(0.8, 1.2, 1.695)
            .sram(512, 1024)
            .batches(8, 16)
            .build()
        )
        assert built == PARITY_GRID
        assert sweep_fingerprint(built) == sweep_fingerprint(PARITY_GRID)

    def test_range_expansion(self):
        grid = Grid().clock(0.8, 1.2, n=5).build()
        assert grid.clocks_ghz == (0.8, 0.9, 1.0, 1.1, 1.2)
        pixels = Grid().pixels(1000, 2000, n=3).build().pixel_counts
        assert pixels == (1000, 1500, 2000)

    def test_eager_validation_at_the_call_site(self):
        with pytest.raises(ValueError, match="unknown app"):
            Grid().app("dlss")
        with pytest.raises(ValueError, match="power of two|scale"):
            Grid().scale(7)
        with pytest.raises(ValueError, match="at least one value"):
            Grid().clock()
        with pytest.raises(ValueError, match="n must be at least 2"):
            Grid().clock(0.8, 1.2, n=1)
        with pytest.raises(ValueError, match="2"):
            Grid().clock(0.8, 1.0, 1.2, n=5)

    def test_axis_cannot_be_silently_respecified(self):
        with pytest.raises(ValueError, match="already set"):
            Grid().scale(8).scale(16)

    def test_as_sweep_grid_accepts_every_spelling(self):
        builder = Grid().app("nerf").scale(8, 16)
        from_builder = as_sweep_grid(builder)
        from_dict = as_sweep_grid({"apps": ["nerf"], "scale_factors": [8, 16]})
        assert from_builder == from_dict == as_sweep_grid(from_builder)
        assert as_sweep_grid(None) == SweepGrid()
        with pytest.raises(TypeError, match="grid must be"):
            as_sweep_grid(42)

    def test_repr_names_the_set_axes(self):
        assert "scale_factors=(8,)" in repr(Grid().scale(8))

    def test_range_expansion_deduplicates_rounded_values(self):
        # 5 samples over [1000, 1002] round onto 3 distinct pixel counts;
        # a duplicated axis value would sweep (and double-count) the same
        # design points twice
        pixels = Grid().pixels(1000, 1002, n=5).build().pixel_counts
        assert pixels == (1000, 1001, 1002)
        assert len(set(pixels)) == len(pixels)
        # de-duplicated grids build (the duplicate would also have upset
        # record counts downstream)
        grid = Grid().app("nerf").pixels(2000, 2002, n=4).build()
        assert grid.pixel_counts == (2000, 2001, 2002)

    def test_range_collapsing_below_two_values_fails_at_call_site(self):
        with pytest.raises(ValueError, match="collapses"):
            Grid().pixels(1000, 1000, n=3)
        with pytest.raises(ValueError, match="collapses"):
            # every sample rounds to the same integer
            Grid().pixels(1000, 1000.4, n=5)
        # floats do not round, so a tight clock range is fine
        assert len(Grid().clock(1.0, 1.0001, n=3).build().clocks_ghz) == 3


# ---------------------------------------------------------------------------
# unified exception hierarchy + deprecated shims
# ---------------------------------------------------------------------------


class TestExceptionHierarchy:
    def test_every_facade_error_is_a_repro_error(self):
        from repro.api import NotOnGridError

        assert issubclass(AmbiguousAxisError, ReproError)
        assert issubclass(NotOnGridError, ReproError)
        assert issubclass(InfeasibleQueryError, ReproError)
        assert issubclass(ServiceError, ReproError)
        assert issubclass(BackendUnavailableError, ReproError)
        # and the legacy contracts are preserved
        assert issubclass(AmbiguousAxisError, KeyError)
        assert issubclass(NotOnGridError, KeyError)
        assert issubclass(InfeasibleQueryError, LookupError)
        assert issubclass(BackendUnavailableError, ConnectionError)

    def test_value_off_the_grid_is_structured(self, local_session):
        from repro.api import NotOnGridError

        sweep = local_session.sweep(PARITY_GRID)
        with pytest.raises(NotOnGridError, match="scale_factor=12"):
            sweep.point(app="nerf", scale_factor=12, clock_ghz=0.8,
                        grid_sram_kb=512, n_batches=8)
        with pytest.raises(NotOnGridError, match="clock_ghz=9.9"):
            sweep.point(app="nerf", scale_factor=8, clock_ghz=9.9,
                        grid_sram_kb=512, n_batches=8)
        with pytest.raises(NotOnGridError, match="app='bogus'"):
            sweep.pareto(app="bogus")

    def test_unknown_engine_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Session.local(engine="gpu")


class TestDeprecatedShims:
    def test_design_space_warns_and_matches_session(self):
        with pytest.warns(DeprecationWarning, match="design_space"):
            points = design_space("multi_res_hashgrid")
        assert [p.scale_factor for p in points] == [8, 16, 32, 64]
        sweep = Session().sweep(SweepGrid(schemes=("multi_res_hashgrid",)))
        for point in points:
            k = sweep.grid.scale_factors.index(point.scale_factor)
            assert point.area_overhead_pct == pytest.approx(
                float(sweep.result.area_overhead_pct[k, 0, 0, 0]), rel=RTOL
            )
            for app, speedup in point.speedups.items():
                assert speedup == pytest.approx(
                    sweep.point(app=app, scale_factor=point.scale_factor).speedup,
                    rel=RTOL,
                )

    def test_pareto_frontier_warns_and_delegates_to_pareto_front(self):
        points = [
            DesignPoint(8, 5.0, 3.0, {"nerf": 10.0}),
            DesignPoint(16, 10.0, 6.0, {"nerf": 8.0}),  # dominated
            DesignPoint(32, 12.0, 7.0, {"nerf": 12.0}),
        ]
        with pytest.warns(DeprecationWarning, match="pareto_frontier"):
            frontier = pareto_frontier(points)
        keep = pareto_front(
            [p.area_overhead_pct for p in points],
            [p.average_speedup for p in points],
        )
        assert frontier == [points[i] for i in sorted(keep)]

    def test_smallest_scale_for_fps_warns(self):
        with pytest.warns(DeprecationWarning, match="smallest_scale_for_fps"):
            scale = smallest_scale_for_fps("gia", 60, FHD_PIXELS)
        assert scale == 8


# ---------------------------------------------------------------------------
# facade purity + CLI end to end against a live service
# ---------------------------------------------------------------------------


class TestFacadeConsumers:
    def test_cli_imports_only_the_facade(self):
        import repro.cli

        source = inspect.getsource(repro.cli)
        assert "sweep_grid" not in source
        assert "ServiceClient" not in source
        assert "request_json" not in source

    def test_cli_query_round_trip(self, live_service, capsys):
        from repro.cli import main

        port = str(live_service["port"])
        assert main(["query", "pareto", "--port", port]) == 0
        front = json.loads(capsys.readouterr().out)
        assert front and all("scale_factor" in p for p in front)

        assert main(["query", "stats", "--port", port]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert {"connections", "requests", "reused"} <= set(stats["http"])

        assert main(["query", "cheapest", "--app", "nerf", "--fps", "60",
                     "--port", port]) == 0
        cheapest = json.loads(capsys.readouterr().out)
        assert cheapest["scale_factor"] == 8

    def test_cli_query_structured_error_and_unreachable(
        self, live_service, capsys
    ):
        from repro.cli import main

        # cheapest without --app on a 4-app grid: ambiguous-axis payload
        assert main(["query", "cheapest", "--fps", "60",
                     "--port", str(live_service["port"])]) == 1
        err = capsys.readouterr().err
        assert json.loads(err)["axis"] == "app"
        # nothing listening: a friendly pointer, exit 1
        assert main(["query", "stats", "--port", "1"]) == 1
        assert "repro serve" in capsys.readouterr().err

    def test_report_design_space_section_uses_facade(self):
        from repro.analysis import report

        source = inspect.getsource(report)
        assert "Session" in source and "sweep_grid(" not in source

    def test_backend_protocol_is_pluggable(self, local_session):
        class RecordingBackend(LocalBackend):
            name = "recording"

            def __init__(self):
                super().__init__(engine="vectorized")
                self.sweeps = 0

            def sweep(self, grid):
                self.sweeps += 1
                return super().sweep(grid)

        backend = RecordingBackend()
        session = Session(backend)
        sweep = session.sweep(PARITY_GRID)
        assert backend.sweeps == 1
        assert sweep.backend == "recording"
        np.testing.assert_array_equal(
            sweep.result.accelerated_ms,
            local_session.sweep(PARITY_GRID).result.accelerated_ms,
        )

    def test_remote_backend_is_injectable(self, live_service):
        client = SyncServiceClient(port=live_service["port"])
        session = Session(RemoteBackend(client=client))
        try:
            assert session.sweep(PARITY_GRID).size == PARITY_GRID.size
            assert client.connections_opened == 1
        finally:
            session.close()


class TestSchemaDriftedPointRecord:
    """RemoteBackend.point against a server missing result fields."""

    class _DriftedClient:
        """A stub SyncServiceClient whose /point record lost fields."""

        def __init__(self, drop):
            self.drop = drop

        def point(self, grid, **selectors):
            import dataclasses

            from repro.core.dse import EmulationResult

            record = {
                field.name: 1.0
                for field in dataclasses.fields(EmulationResult)
            }
            record.update(app="nerf", scheme="multi_res_hashgrid",
                          scale_factor=8, n_pixels=FHD_PIXELS)
            for name in self.drop:
                record.pop(name)
            return record

        def close(self):
            pass

    def test_missing_fields_raise_structured_service_error(self):
        backend = RemoteBackend(
            client=self._DriftedClient(drop=("amdahl_bound", "dma_ms"))
        )
        with pytest.raises(ServiceError) as excinfo:
            backend.point("nerf", "multi_res_hashgrid", 8, FHD_PIXELS)
        error = excinfo.value
        assert error.status == 502
        assert error.code == "bad-response"
        assert error.details["missing"] == ["dma_ms", "amdahl_bound"]
        assert "amdahl_bound" in str(error) and "dma_ms" in str(error)
        assert isinstance(error, ReproError)

    def test_complete_record_still_builds_the_result(self):
        backend = RemoteBackend(client=self._DriftedClient(drop=()))
        result = backend.point("nerf", "multi_res_hashgrid", 8, FHD_PIXELS)
        assert result.app == "nerf"
        assert result.scale_factor == 8
