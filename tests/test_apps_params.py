"""Tests for the Table I parameter registry."""

import pytest

from repro.apps import (
    APP_NAMES,
    ENCODING_SCHEMES,
    AppConfig,
    GridParams,
    MLPSpec,
    get_config,
    iter_configs,
)


class TestRegistryShape:
    def test_twelve_configs(self):
        assert len(list(iter_configs())) == 12

    def test_every_app_scheme_pair_present(self):
        for app in APP_NAMES:
            for scheme in ENCODING_SCHEMES:
                config = get_config(app, scheme)
                assert config.app == app
                assert config.grid.scheme == scheme

    def test_unknown_lookup_raises(self):
        with pytest.raises(KeyError):
            get_config("nerf", "fourier")
        with pytest.raises(KeyError):
            get_config("dlss", "multi_res_hashgrid")

    def test_lookup_case_insensitive(self):
        assert get_config("NeRF", "MULTI_RES_HASHGRID").app == "nerf"


class TestTable1Values:
    def test_hashgrid_levels_and_features(self):
        """Hashgrid: L=16, F=2, T=2^19 (2^24 for GIA)."""
        for app in APP_NAMES:
            config = get_config(app, "multi_res_hashgrid")
            assert config.grid.n_levels == 16
            assert config.grid.n_features == 2
            expected_log2_t = 24 if app == "gia" else 19
            assert config.grid.log2_table_size == expected_log2_t
            assert config.grid.encoded_dim == 32

    def test_densegrid_levels(self):
        """Densegrid: L=8, F=2, b=1.405."""
        for app in APP_NAMES:
            config = get_config(app, "multi_res_densegrid")
            assert config.grid.n_levels == 8
            assert config.grid.growth_factor == pytest.approx(1.405)
            assert config.grid.encoded_dim == 16

    def test_lrdg_levels(self):
        """Low-res densegrid: L=2, F=8, Nmin=128, b=1."""
        for app in APP_NAMES:
            config = get_config(app, "low_res_densegrid")
            assert config.grid.n_levels == 2
            assert config.grid.n_features == 8
            assert config.grid.n_min == 128
            assert config.grid.growth_factor == 1.0

    def test_per_app_growth_factors(self):
        assert get_config("nerf", "multi_res_hashgrid").grid.growth_factor == pytest.approx(1.51572)
        assert get_config("nsdf", "multi_res_hashgrid").grid.growth_factor == pytest.approx(1.38191)
        assert get_config("nvr", "multi_res_hashgrid").grid.growth_factor == pytest.approx(1.275)
        assert get_config("gia", "multi_res_hashgrid").grid.growth_factor == pytest.approx(1.25992)

    def test_mlp_shapes(self):
        nerf = get_config("nerf", "multi_res_hashgrid")
        assert len(nerf.mlps) == 2
        assert nerf.mlps[0].layers == 3  # density
        assert nerf.mlps[1].layers == 4  # color
        assert nerf.mlps[1].input_dim == 32  # 16 features + 16 SH
        for app in ("nsdf", "gia", "nvr"):
            config = get_config(app, "multi_res_hashgrid")
            assert len(config.mlps) == 1
            assert config.mlps[0].layers == 4
        assert get_config("nsdf", "multi_res_hashgrid").mlps[0].output_dim == 1
        assert get_config("nvr", "multi_res_hashgrid").mlps[0].output_dim == 4
        assert get_config("gia", "multi_res_hashgrid").mlps[0].output_dim == 3

    def test_gia_is_2d(self):
        for scheme in ENCODING_SCHEMES:
            assert get_config("gia", scheme).spatial_dim == 2

    def test_all_mlps_are_64_wide(self):
        """Every Table I network uses 64 neurons per hidden layer."""
        for config in iter_configs():
            for spec in config.mlps:
                assert spec.neurons == 64


class TestDerivedQuantities:
    def test_flops_per_input(self):
        spec = MLPSpec(input_dim=32, output_dim=1, neurons=64, layers=3)
        expected = 2 * (32 * 64 + 64 * 64 + 64 * 64 + 64 * 1)
        assert spec.flops_per_input == expected

    def test_num_weights(self):
        spec = MLPSpec(input_dim=16, output_dim=4, neurons=64, layers=4)
        assert spec.num_weights == 16 * 64 + 3 * 64 * 64 + 64 * 4

    def test_with_grid_overrides(self):
        config = get_config("gia", "multi_res_hashgrid")
        small = config.with_grid_overrides(log2_table_size=14)
        assert small.grid.log2_table_size == 14
        assert config.grid.log2_table_size == 24  # original untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            GridParams("bad_scheme", 16, 1.5, 2, 19, 16)
        with pytest.raises(ValueError):
            GridParams("multi_res_hashgrid", 0, 1.5, 2, 19, 16)
        with pytest.raises(ValueError):
            MLPSpec(input_dim=0, output_dim=1)
        with pytest.raises(ValueError):
            AppConfig(
                app="nope",
                grid=GridParams("multi_res_hashgrid", 16, 1.5, 2, 19, 16),
                mlps=(MLPSpec(input_dim=32, output_dim=1),),
                spatial_dim=3,
            )
