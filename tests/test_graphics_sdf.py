"""Tests for SDF primitives, CSG, normals and sphere tracing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphics import (
    Box,
    Difference,
    Intersection,
    Plane,
    RayBundle,
    Scale,
    SmoothUnion,
    Sphere,
    Torus,
    Translate,
    Union,
    default_sdf_scene,
    sdf_normal,
    sphere_trace,
)

points_strategy = st.tuples(
    st.floats(-2, 2), st.floats(-2, 2), st.floats(-2, 2)
)


class TestPrimitives:
    def test_sphere_exact_distances(self):
        s = Sphere(radius=1.0)
        pts = np.array([[2.0, 0, 0], [0.5, 0, 0], [0, 0, 0]])
        np.testing.assert_allclose(s(pts), [1.0, -0.5, -1.0])

    def test_box_surface_zero(self):
        b = Box(half_extents=(1, 1, 1))
        assert b(np.array([[1.0, 0, 0]]))[0] == pytest.approx(0.0)
        assert b(np.array([[2.0, 0, 0]]))[0] == pytest.approx(1.0)
        assert b(np.array([[0.0, 0, 0]]))[0] == pytest.approx(-1.0)

    def test_torus_center_of_tube_is_minus_minor(self):
        t = Torus(major_radius=1.0, minor_radius=0.25)
        assert t(np.array([[1.0, 0, 0]]))[0] == pytest.approx(-0.25)

    def test_plane_signed_side(self):
        p = Plane(normal=(0, 1, 0), offset=0.0)
        assert p(np.array([[0, 2.0, 0]]))[0] == pytest.approx(2.0)
        assert p(np.array([[0, -1.0, 0]]))[0] == pytest.approx(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Sphere(radius=0.0)
        with pytest.raises(ValueError):
            Box(half_extents=(0, 1, 1))
        with pytest.raises(ValueError):
            Torus(major_radius=0.2, minor_radius=0.5)
        with pytest.raises(ValueError):
            Plane(normal=(0, 0, 0))
        with pytest.raises(ValueError):
            Scale(Sphere(), 0.0)

    def test_points_shape_validation(self):
        with pytest.raises(ValueError):
            Sphere()(np.zeros((3,)))


class TestCSG:
    @given(points_strategy)
    @settings(max_examples=40)
    def test_union_is_min(self, p):
        a, b = Sphere(radius=0.5), Box(half_extents=(0.4, 0.4, 0.4))
        pts = np.array([p])
        assert Union(a, b)(pts)[0] == min(a(pts)[0], b(pts)[0])

    @given(points_strategy)
    @settings(max_examples=40)
    def test_intersection_is_max(self, p):
        a, b = Sphere(radius=0.5), Box(half_extents=(0.4, 0.4, 0.4))
        pts = np.array([p])
        assert Intersection(a, b)(pts)[0] == max(a(pts)[0], b(pts)[0])

    def test_difference_carves(self):
        solid = Sphere(radius=1.0)
        hole = Sphere(radius=0.5)
        carved = Difference(solid, hole)
        assert carved(np.array([[0.0, 0, 0]]))[0] > 0  # center removed
        assert carved(np.array([[0.75, 0, 0]]))[0] < 0  # shell remains

    def test_operator_sugar(self):
        a, b = Sphere(radius=0.5), Box(half_extents=(0.4, 0.4, 0.4))
        pts = np.array([[0.1, 0.2, 0.0]])
        assert (a | b)(pts)[0] == Union(a, b)(pts)[0]
        assert (a & b)(pts)[0] == Intersection(a, b)(pts)[0]
        assert (a - b)(pts)[0] == Difference(a, b)(pts)[0]

    def test_smooth_union_bounded_by_hard_union(self):
        a = Sphere(center=(-0.2, 0, 0), radius=0.3)
        b = Sphere(center=(0.2, 0, 0), radius=0.3)
        smooth = SmoothUnion(a, b, k=0.1)
        hard = Union(a, b)
        pts = np.random.default_rng(0).uniform(-1, 1, size=(100, 3))
        assert np.all(smooth(pts) <= hard(pts) + 1e-12)

    def test_translate_moves_surface(self):
        moved = Translate(Sphere(radius=1.0), (2.0, 0, 0))
        assert moved(np.array([[2.0, 0, 0]]))[0] == pytest.approx(-1.0)

    def test_scale_preserves_metric(self):
        scaled = Scale(Sphere(radius=1.0), 2.0)
        assert scaled(np.array([[4.0, 0, 0]]))[0] == pytest.approx(2.0)


class TestNormals:
    def test_sphere_normals_radial(self):
        s = Sphere(radius=1.0)
        pts = np.array([[1.0, 0, 0], [0, 1.0, 0], [0, 0, -1.0]])
        normals = sdf_normal(s, pts)
        np.testing.assert_allclose(normals, pts, atol=1e-3)

    def test_normals_unit_length(self):
        scene = default_sdf_scene()
        pts = np.random.default_rng(1).uniform(-0.5, 0.5, size=(20, 3))
        normals = sdf_normal(scene, pts)
        np.testing.assert_allclose(np.linalg.norm(normals, axis=1), 1.0, rtol=1e-6)


class TestSphereTrace:
    def test_hits_sphere_head_on(self):
        rays = RayBundle(np.array([[0, 0, 3.0]]), np.array([[0, 0, -1.0]]))
        result = sphere_trace(Sphere(radius=1.0), rays, t_max=10.0)
        assert result.hit[0]
        assert result.t[0] == pytest.approx(2.0, abs=1e-3)
        np.testing.assert_allclose(result.points[0], [0, 0, 1.0], atol=1e-3)

    def test_misses_off_axis(self):
        rays = RayBundle(np.array([[0, 5.0, 3.0]]), np.array([[0, 0, -1.0]]))
        result = sphere_trace(Sphere(radius=1.0), rays, t_max=10.0)
        assert not result.hit[0]

    def test_iteration_budget_respected(self):
        rays = RayBundle(np.array([[0, 0, 3.0]]), np.array([[0, 0, -1.0]]))
        result = sphere_trace(Sphere(radius=1.0), rays, max_steps=3)
        assert result.iterations[0] <= 3

    def test_batch_mixed_hits(self):
        origins = np.array([[0, 0, 3.0], [0, 5.0, 3.0]])
        dirs = np.array([[0, 0, -1.0], [0, 0, -1.0]])
        result = sphere_trace(Sphere(radius=1.0), RayBundle(origins, dirs))
        assert result.hit[0] and not result.hit[1]

    def test_default_scene_renders_some_hits(self):
        rng = np.random.default_rng(0)
        n = 64
        origins = np.tile([[0.0, 0.0, 2.0]], (n, 1))
        targets = rng.uniform(-0.3, 0.3, size=(n, 3))
        dirs = targets - origins
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        result = sphere_trace(default_sdf_scene(), RayBundle(origins, dirs), t_max=5.0)
        assert result.hit.sum() > n // 4

    def test_validation(self):
        rays = RayBundle(np.zeros((1, 3)), np.array([[0, 0, 1.0]]))
        with pytest.raises(ValueError):
            sphere_trace(Sphere(), rays, t_min=1.0, t_max=0.5)
        with pytest.raises(ValueError):
            sphere_trace(Sphere(), rays, epsilon=0.0)
        with pytest.raises(ValueError):
            sphere_trace(Sphere(), rays, max_steps=0)
        with pytest.raises(ValueError):
            sphere_trace(Sphere(), rays, step_scale=0.0)
