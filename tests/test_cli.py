"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestEmulateCommand:
    def test_basic(self, capsys):
        assert main(["emulate", "--app", "gia", "--scale", "8"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "Amdahl" in out

    def test_rejects_bad_app(self):
        with pytest.raises(SystemExit):
            main(["emulate", "--app", "dlss"])

    def test_rejects_bad_scale(self):
        with pytest.raises(SystemExit):
            main(["emulate", "--scale", "7"])


class TestSweepCommand:
    def test_prints_all_apps_and_paper_row(self, capsys):
        assert main(["sweep", "--scheme", "multi_res_densegrid"]) == 0
        out = capsys.readouterr().out
        for app in ("nerf", "nsdf", "gia", "nvr", "average", "paper avg"):
            assert app in out


class TestDseCommand:
    def test_grid_with_pareto_column(self, capsys):
        assert main(["dse"]) == 0
        out = capsys.readouterr().out
        assert "pareto" in out
        for scale in (8, 16, 32, 64):
            assert f"NGPC-{scale}" in out

    def test_fps_constraint_query(self, capsys):
        assert main(["dse", "--fps", "60", "--pixels", "8294400"]) == 0
        out = capsys.readouterr().out
        assert "cheapest configuration meeting 60 FPS" in out
        assert "NGPC-64" in out  # NeRF needs the largest cluster at 4K

    def test_scalar_engine(self, capsys):
        assert main(["dse", "--engine", "scalar"]) == 0
        assert "engine=scalar" in capsys.readouterr().out

    def test_rejects_bad_engine(self):
        with pytest.raises(SystemExit):
            main(["dse", "--engine", "gpu"])

    @pytest.mark.parametrize("fps", ("0", "-5"))
    def test_rejects_non_positive_fps(self, fps):
        with pytest.raises(SystemExit):
            main(["dse", "--fps", fps])


class TestExperimentsCommand:
    def test_single_experiment(self, capsys):
        assert main(["experiments", "fusion"]) == 0
        out = capsys.readouterr().out
        assert "fusion" in out
        assert "paper=9.94" in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["experiments", "fig99"])


class TestTrainCommand:
    def test_short_training_run(self, capsys):
        assert main(
            ["train", "--app", "gia", "--steps", "5", "--batch-size", "64"]
        ) == 0
        out = capsys.readouterr().out
        assert "loss" in out


class TestReportCommands:
    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "NGPC-64" in out

    def test_bandwidth(self, capsys):
        assert main(["bandwidth"]) == 0
        out = capsys.readouterr().out
        assert "access ms" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
