"""The binary frame transport: round trips, parity, corruption rejection.

The frame codec (:mod:`repro.transport`) replaced pickle on the
``/cluster/*`` wire; these tests pin three properties:

- every payload shape the cluster protocol ships round-trips exactly
  (including the pickle-equality parity the migration promised),
- decoding is zero-copy and read-only,
- every corruption — flipped bits, truncation, bad magic/version,
  hostile column tables — raises :class:`FrameError`, never decodes to
  garbage, and never executes code.
"""

import json
import pickle  # the retired wire format: the parity reference only
import struct
import zlib

import numpy as np
import pytest

from repro.core.config import NGPCConfig
from repro.transport import (
    FRAME_CONTENT_TYPE,
    FRAME_MAGIC,
    FRAME_VERSION,
    FrameError,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
)
from repro.transport.frame import _HEADER


def sample_message():
    rng = np.random.default_rng(3)
    return {
        "job_id": "j-17",
        "task_id": 4,
        "placement": ((0, 1), (0, 1), (2, 4), (0, 3), (0, 2), (1, 2)),
        "ngpc": NGPCConfig(scale_factor=32),
        "fingerprint": ("calib", 1.25, ("nested", 7)),
        "block": {
            "baseline_ms": rng.random((2, 3, 4)),
            "accelerated_ms": rng.random((2, 3, 4)),
            "iterations": rng.integers(0, 100, (2, 3, 4)),
            "flags": rng.random((2, 3, 4)) > 0.5,
        },
        "note": None,
        "ratio": 0.75,
        "names": ["a", "b"],
    }


class TestFrameRoundTrip:
    def test_meta_and_columns(self):
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        b = np.array([1, 2, 3], dtype=np.int32)
        meta, columns = decode_frame(
            encode_frame({"k": "v"}, {"a": a, "b": b})
        )
        assert meta == {"k": "v"}
        assert list(columns) == ["a", "b"]
        np.testing.assert_array_equal(columns["a"], a)
        assert columns["a"].dtype == a.dtype
        np.testing.assert_array_equal(columns["b"], b)
        assert columns["b"].dtype == b.dtype

    def test_columns_are_read_only_views(self):
        data = encode_frame(None, {"x": np.arange(8.0)})
        _, columns = decode_frame(data)
        assert not columns["x"].flags.writeable
        # zero-copy: the array's buffer lives inside the received bytes
        assert columns["x"].base is not None
        with pytest.raises((ValueError, RuntimeError)):
            columns["x"][0] = 99.0

    def test_empty_columns_and_rich_meta(self):
        meta, columns = decode_frame(
            encode_frame({"nested": [1, {"deep": True}], "f": 0.5})
        )
        assert meta == {"nested": [1, {"deep": True}], "f": 0.5}
        assert columns == {}

    def test_zero_length_column(self):
        _, columns = decode_frame(
            encode_frame(None, {"empty": np.zeros((0, 4))})
        )
        assert columns["empty"].shape == (0, 4)

    def test_big_endian_input_normalized(self):
        big = np.arange(5, dtype=">f8")
        _, columns = decode_frame(encode_frame(None, {"x": big}))
        np.testing.assert_array_equal(columns["x"], big)

    def test_object_dtype_refused_on_encode(self):
        with pytest.raises(FrameError, match="non-numeric"):
            encode_frame(None, {"bad": np.array([object()])})

    def test_unserializable_meta_refused(self):
        with pytest.raises(FrameError, match="JSON"):
            encode_frame({"oops": object()})

    def test_content_type_constant(self):
        assert FRAME_CONTENT_TYPE == "application/x-repro-frame"


class TestMessageRoundTrip:
    def test_cluster_message_shapes(self):
        message = sample_message()
        decoded = decode_message(encode_message(message))
        assert decoded["job_id"] == message["job_id"]
        assert decoded["placement"] == message["placement"]
        assert isinstance(decoded["placement"], tuple)
        assert isinstance(decoded["placement"][0], tuple)
        assert decoded["ngpc"] == message["ngpc"]
        assert isinstance(decoded["ngpc"], NGPCConfig)
        assert decoded["fingerprint"] == message["fingerprint"]
        assert decoded["note"] is None
        assert decoded["names"] == ["a", "b"]
        for name, array in message["block"].items():
            got = decoded["block"][name]
            assert got.dtype == array.dtype, name
            np.testing.assert_array_equal(got, array)

    def test_pickle_parity(self):
        """The frame path reproduces the retired pickle path bit for bit."""
        message = sample_message()
        from_frame = decode_message(encode_message(message))
        from_pickle = pickle.loads(pickle.dumps(message))
        assert from_frame["placement"] == from_pickle["placement"]
        assert from_frame["ngpc"] == from_pickle["ngpc"]
        assert from_frame["fingerprint"] == from_pickle["fingerprint"]
        for name in message["block"]:
            a, b = from_frame["block"][name], from_pickle["block"][name]
            assert a.dtype == b.dtype
            assert a.shape == b.shape
            assert a.tobytes() == b.tobytes()

    def test_empty_body_decodes_to_empty_dict(self):
        assert decode_message(b"") == {}

    def test_numpy_scalars_become_python(self):
        decoded = decode_message(
            encode_message({"n": np.int64(7), "x": np.float64(0.5)})
        )
        assert decoded == {"n": 7, "x": 0.5}
        assert type(decoded["n"]) is int

    def test_reserved_key_refused(self):
        with pytest.raises(FrameError, match="reserved"):
            encode_message({"__t": 1})

    def test_non_string_key_refused(self):
        with pytest.raises(FrameError, match="not a string"):
            encode_message({3: "x"})

    def test_unencodable_value_refused(self):
        with pytest.raises(FrameError, match="no wire form"):
            encode_message({"f": object()})


class TestCorruptionRejection:
    def test_truncated_header(self):
        with pytest.raises(FrameError, match="truncated"):
            decode_frame(b"RPRF\x01")

    def test_bad_magic(self):
        data = bytearray(encode_frame({"k": 1}))
        data[:4] = b"EVIL"
        with pytest.raises(FrameError, match="magic"):
            decode_frame(bytes(data))

    def test_unsupported_version(self):
        data = bytearray(encode_frame({"k": 1}))
        struct.pack_into("<H", data, 4, FRAME_VERSION + 1)
        with pytest.raises(FrameError, match="version"):
            decode_frame(bytes(data))

    def test_truncated_payload(self):
        data = encode_frame(None, {"x": np.arange(16.0)})
        with pytest.raises(FrameError, match="length mismatch"):
            decode_frame(data[:-8])

    def test_flipped_payload_bit_fails_crc(self):
        data = bytearray(encode_frame(None, {"x": np.arange(16.0)}))
        data[-1] ^= 0x40
        with pytest.raises(FrameError, match="CRC"):
            decode_frame(bytes(data))

    def test_flipped_meta_bit_fails_crc(self):
        data = bytearray(encode_frame({"key": "value"}))
        data[_HEADER.size + 3] ^= 0x01
        with pytest.raises(FrameError, match="CRC"):
            decode_frame(bytes(data))

    def _forged(self, table, payload=b"", meta=None):
        """A frame with a hand-written column table (valid CRC/header)."""
        meta_bytes = json.dumps(
            {"meta": meta, "columns": table}, separators=(",", ":")
        ).encode()
        crc = zlib.crc32(payload, zlib.crc32(meta_bytes))
        header = _HEADER.pack(FRAME_MAGIC, FRAME_VERSION, len(table),
                              len(meta_bytes), len(payload), crc)
        return header + meta_bytes + payload

    def test_object_dtype_refused_on_decode(self):
        table = [{"name": "x", "dtype": "|O", "shape": [1],
                  "offset": 0, "nbytes": 8}]
        with pytest.raises(FrameError, match="dtype"):
            decode_frame(self._forged(table, b"\x00" * 8))

    def test_column_overrun_refused(self):
        table = [{"name": "x", "dtype": "<f8", "shape": [64],
                  "offset": 0, "nbytes": 512}]
        with pytest.raises(FrameError, match="overruns"):
            decode_frame(self._forged(table, b"\x00" * 8))

    def test_inconsistent_nbytes_refused(self):
        table = [{"name": "x", "dtype": "<f8", "shape": [2],
                  "offset": 0, "nbytes": 8}]
        with pytest.raises(FrameError, match="inconsistent"):
            decode_frame(self._forged(table, b"\x00" * 16))

    def test_negative_shape_refused(self):
        table = [{"name": "x", "dtype": "<f8", "shape": [-1],
                  "offset": 0, "nbytes": 8}]
        with pytest.raises(FrameError, match="shape"):
            decode_frame(self._forged(table, b"\x00" * 8))

    def test_duplicate_column_refused(self):
        entry = {"name": "x", "dtype": "<f8", "shape": [1],
                 "offset": 0, "nbytes": 8}
        with pytest.raises(FrameError, match="duplicate"):
            decode_frame(self._forged([entry, dict(entry)], b"\x00" * 8))

    def test_column_count_mismatch_refused(self):
        data = bytearray(encode_frame(None, {"x": np.arange(4.0)}))
        struct.pack_into("<H", data, 6, 5)  # header ncols forged to 5
        with pytest.raises(FrameError, match="column count"):
            decode_frame(bytes(data))

    def test_tagged_object_with_extra_keys_refused(self):
        data = self._forged([], meta={"__t": [1], "extra": 2})
        with pytest.raises(FrameError, match="extra keys"):
            decode_message(data)

    def test_array_tag_out_of_range_refused(self):
        data = self._forged([], meta={"__a": 3})
        with pytest.raises(FrameError, match="__a"):
            decode_message(data)

    def test_forged_ngpc_fields_refused(self):
        data = self._forged([], meta={"__ngpc": {"scale_factor": 8}})
        with pytest.raises(FrameError, match="__ngpc"):
            decode_message(data)

    def test_frame_error_is_value_error(self):
        assert issubclass(FrameError, ValueError)

    def test_pickle_bytes_are_not_a_frame(self):
        """Old-protocol bodies fail loudly instead of half-decoding."""
        with pytest.raises(FrameError):
            decode_frame(pickle.dumps({"job_id": "x"}))


class TestNoPickleOnTheWire:
    def test_service_package_does_not_import_pickle(self):
        """The wire-protocol modules must not import or call pickle.

        Prose mentions (docstrings explaining what the frames replaced)
        are fine; ``import pickle`` or a ``pickle.`` call is not.
        """
        import pathlib
        import re

        import repro.service

        package_dir = pathlib.Path(repro.service.__file__).parent
        pattern = re.compile(r"^\s*(import pickle|from pickle)|pickle\.",
                             re.MULTILINE)
        offenders = [
            str(path)
            for path in package_dir.rglob("*.py")
            if pattern.search(path.read_text())
        ]
        assert offenders == []
