"""Integration: the hardware functional engine matches the software
encoding for (down-scaled) versions of every Table I configuration.

The hardware quantizes coordinates to Q0.16 fixed point.  Two genuine
datapath effects follow: (a) points within ~2^-16 of a cell boundary can
resolve to the neighbouring cell, and (b) at a level of resolution N the
interpolation weights carry an irreducible error of ~N x 2^-17 cell
units (the input arrived already rounded).  For the finest Table I
levels that is ~0.5 % of the weight — so the assertions bound the error
accordingly instead of demanding float-exactness.
"""

import numpy as np
import pytest

from repro.apps.base import build_grid_encoding
from repro.apps.params import iter_configs
from repro.core import EncodingEngineFunctional


@pytest.mark.parametrize(
    "config", list(iter_configs()), ids=lambda c: c.name.replace("/", "-")
)
def test_hw_engine_matches_software_for_table1_config(config, rng):
    """The fixed-point datapath is output-equivalent for all 12 configs."""
    encoding = build_grid_encoding(config.grid, config.spatial_dim, seed=0)
    # give the tables realistic (trained-like) content
    for table in encoding.tables:
        table[...] = rng.uniform(-0.5, 0.5, table.shape).astype(np.float32)
    hw = EncodingEngineFunctional(encoding)
    points = rng.uniform(0, 1, size=(256, config.spatial_dim)).astype(np.float32)
    error = np.abs(hw.forward(points) - encoding.forward(points))
    # weight error ~ finest_resolution x 2^-17 per cell; with |features|
    # <= 0.5 and d dims the output error stays ~1 % of the feature range
    finest = encoding.level_resolution(encoding.n_levels - 1)
    bound = max(5e-4, finest * 2.0**-17 * config.spatial_dim * 0.5 * 4)
    assert np.quantile(error, 0.99) < bound
    assert error.max() < 0.25  # never exceeds half the feature range


@pytest.mark.parametrize(
    "config",
    [c for c in iter_configs() if c.grid.scheme == "multi_res_hashgrid"],
    ids=lambda c: c.app,
)
def test_quantized_engine_bounded_error(config, rng):
    """8-bit feature SRAM stays within the quantization error bound."""
    encoding = build_grid_encoding(config.grid, config.spatial_dim, seed=0)
    for table in encoding.tables:
        table[...] = rng.uniform(-1.0, 1.0, table.shape).astype(np.float32)
    hw = EncodingEngineFunctional(encoding, quantize_features=True)
    points = rng.uniform(0, 1, size=(256, config.spatial_dim)).astype(np.float32)
    error = np.abs(hw.forward(points) - encoding.forward(points))
    # 8-bit feature step (1/127) plus the fixed-point weight error of the
    # finest level (~1 % of |features| <= 1); convex interpolation keeps
    # the combination bounded
    finest = encoding.level_resolution(encoding.n_levels - 1)
    bound = 2.0 / 127.0 + finest * 2.0**-17 * config.spatial_dim * 4
    assert np.quantile(error, 0.99) <= bound
    assert error.max() < 0.5


def test_boundary_free_points_match_exactly(rng):
    """Points provably far from every cell boundary agree to tolerance."""
    config = next(iter_configs())  # nerf / hashgrid
    encoding = build_grid_encoding(config.grid, 3, seed=0)
    for table in encoding.tables:
        table[...] = rng.uniform(-0.5, 0.5, table.shape).astype(np.float32)
    hw = EncodingEngineFunctional(encoding)
    # cell centers of the finest level are >= half a cell from boundaries
    finest = encoding.level_resolution(encoding.n_levels - 1)
    idx = rng.integers(0, finest, size=(64, 3))
    points = ((idx + 0.5) / finest).astype(np.float32)
    error = np.abs(hw.forward(points) - encoding.forward(points))
    assert error.max() < 5e-4
