"""Tests for the experiment registry, table formatting and workloads."""

import pytest

from repro.analysis import (
    EXPERIMENTS,
    ExperimentRow,
    format_comparison,
    format_table,
    get_experiment,
)
from repro.workloads import (
    FrameWorkload,
    RESOLUTION_PIXELS,
    frame_budget_ms,
    full_sweep,
    scale_sweep,
    standard_workloads,
)


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 10.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_title(self):
        out = format_table(["a"], [[1]], title="Title")
        assert out.splitlines()[0] == "Title"

    def test_validation(self):
        with pytest.raises(ValueError):
            format_table([], [])
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_float_formatting(self):
        out = format_table(["v"], [[123456.0], [12.3456], [1.23456]])
        assert "123,456" in out
        assert "12.35" in out
        assert "1.235" in out


class TestFormatComparison:
    def test_with_reported(self):
        line = format_comparison("x", 110.0, 100.0)
        assert "+10.0%" in line

    def test_without_reported(self):
        assert "n/a" in format_comparison("x", 1.0, None)

    def test_zero_reported(self):
        assert "n/a" in format_comparison("x", 1.0, 0.0)


class TestExperimentRegistry:
    def test_all_tables_and_figures_registered(self):
        expected = {
            "perf_gap", "fig5", "fig8", "table1", "table2", "fig12",
            "fig13", "fig14", "fig15", "table3", "fusion", "arvr",
        }
        assert expected == set(EXPERIMENTS)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    @pytest.mark.parametrize("exp_id", sorted(EXPERIMENTS))
    def test_every_experiment_produces_rows(self, exp_id):
        rows = get_experiment(exp_id).run()
        assert len(rows) > 0
        for row in rows:
            assert isinstance(row, ExperimentRow)
            assert row.measured == row.measured  # not NaN

    def test_relative_error(self):
        assert ExperimentRow("x", 110.0, 100.0).relative_error == pytest.approx(0.1)
        assert ExperimentRow("x", 1.0).relative_error is None

    def test_key_experiments_within_tolerance(self):
        """Every paper-reported quantity in fig12/fig15/table3 within 10 %."""
        for exp_id in ("fig12", "fig15", "table3", "perf_gap"):
            for row in get_experiment(exp_id).run():
                if row.relative_error is not None:
                    assert abs(row.relative_error) < 0.10, (exp_id, row.label)


class TestWorkloads:
    def test_budget(self):
        assert frame_budget_ms(30) == pytest.approx(33.333, abs=1e-3)
        assert frame_budget_ms(120) == pytest.approx(8.333, abs=1e-3)
        with pytest.raises(ValueError):
            frame_budget_ms(0)

    def test_workload_properties(self):
        w = FrameWorkload("4k", 60)
        assert w.n_pixels == 3840 * 2160
        assert w.budget_ms == pytest.approx(16.667, abs=1e-3)
        assert w.pixels_per_second == w.n_pixels * 60

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            FrameWorkload("16k", 60)
        with pytest.raises(ValueError):
            FrameWorkload("4k", 0)

    def test_standard_workloads_cover_grid(self):
        workloads = standard_workloads()
        assert len(workloads) == len(RESOLUTION_PIXELS) * 4

    def test_scale_sweep(self):
        points = list(scale_sweep("gia", "multi_res_hashgrid"))
        assert [p.scale_factor for p in points] == [8, 16, 32, 64]
        speedups = [p.result.speedup for p in points]
        assert speedups == sorted(speedups)

    def test_full_sweep_size(self):
        points = list(full_sweep(schemes=["multi_res_hashgrid"], scales=[8]))
        assert len(points) == 4  # one per app
