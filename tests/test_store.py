"""Acceptance tests for the persistent content-addressed result store.

The disk tier's contract, end to end:

- **Warm restart**: a sweep evaluated by one service instance is served
  by a *fresh* instance over the same store directory without calling
  its ``sweep_fn`` at all — the persisted arrays come back bit-identical.
- **Delta evaluation**: a grid overlapping a previously evaluated
  hypercube loads every covered block from the store and evaluates only
  the missing ones, and the assembled result is bit-identical to a
  from-scratch evaluation.
- **Corruption degrades, never fails**: a truncated or garbage entry
  (or a corrupt sqlite index) emits a :class:`StoreCorruptionWarning`,
  is quarantined to ``*.corrupt``, and the caller transparently
  re-evaluates.
- **Content addressing**: perturbing the calibration constants changes
  every fingerprint, so stale entries are never addressed again.
"""

import asyncio
import json
import os
import shutil
import warnings

import numpy as np
import pytest

from repro.calibration import fitted
from repro.core.dse import (
    RESULT_ARRAY_FIELDS,
    SweepGrid,
    block_fingerprint,
    shard_task_shape,
    store_block_plan,
    sweep_fingerprint,
    sweep_grid,
)
from repro.service import SweepService
from repro.store import (
    BLOCK_ARRAY_FIELDS,
    ResultStore,
    StoreCorruptionWarning,
    StoreIntegrityError,
    fingerprint_digest,
    new_tier_counters,
    read_arrays,
    sweep_with_store,
    write_arrays_atomic,
)
from tests.test_service import CountingSweep

GRID = SweepGrid(
    apps=("nerf", "nsdf"),
    scale_factors=(8, 16),
    clocks_ghz=(0.8, 1.2),
    n_engines=(16, 32),
)


def _resolved(grid=GRID):
    return grid.resolve().normalized()


def assert_bit_identical(result, reference):
    for name in RESULT_ARRAY_FIELDS:
        assert np.array_equal(
            np.asarray(getattr(result, name)),
            np.asarray(getattr(reference, name)),
        ), f"array {name!r} differs from the reference evaluation"


# ---------------------------------------------------------------------------
# warm restart through the service
# ---------------------------------------------------------------------------


class TestWarmRestart:
    def test_fresh_service_serves_persisted_sweep_without_sweep_fn(self, tmp_path):
        root = str(tmp_path / "store")
        counting = CountingSweep()
        first = SweepService(engine="vectorized", sweep_fn=counting, store=root)
        served = asyncio.run(first.sweep(GRID))
        assert counting.calls == 1
        assert first.tier["evaluations"] == 1

        # a new service over the same directory = a restarted process:
        # the sweep must come back from disk, not from sweep_fn
        second = SweepService(
            engine="vectorized", sweep_fn=counting, store=ResultStore(root)
        )
        warm = asyncio.run(second.sweep(GRID))
        assert counting.calls == 1  # never called again
        stats = second.stats()
        assert stats["cache"]["disk_hits"] == 1
        assert stats["cache"]["evaluations"] == 0
        assert stats["evaluations"] == 0
        assert_bit_identical(warm, served)

        # once RAM-cached, repeats never touch the disk tier again
        asyncio.run(second.sweep(GRID))
        assert second.stats()["cache"]["ram_hits"] == 1

    def test_builtin_engine_evaluates_through_blocks_and_restarts_warm(
        self, tmp_path
    ):
        root = str(tmp_path / "store")
        first = SweepService(engine="vectorized", store=root)
        served = asyncio.run(first.sweep(GRID))
        stats = first.stats()
        assert stats["cache"]["evaluations"] == 1
        assert stats["store"]["blocks_evaluated"] == stats["store"]["blocks_total"] > 0
        assert stats["store"]["sweeps"]["count"] == 1

        second = SweepService(engine="vectorized", store=root)
        warm = asyncio.run(second.sweep(GRID))
        assert second.stats()["cache"]["disk_hits"] == 1
        assert second.evaluations == 0
        reference = sweep_grid(_resolved(), engine="vectorized", use_cache=False)
        assert_bit_identical(warm, reference)
        assert_bit_identical(served, reference)

    def test_store_accepts_a_path_string(self, tmp_path):
        service = SweepService(engine="vectorized", store=str(tmp_path / "s"))
        assert isinstance(service.store, ResultStore)
        assert "store" in service.stats()


# ---------------------------------------------------------------------------
# block-level delta evaluation
# ---------------------------------------------------------------------------


class TestDeltaEvaluation:
    def test_overlapping_grid_evaluates_only_missing_blocks(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        subset = _resolved()
        first = new_tier_counters()
        sweep_with_store(store, subset, counters=first, use_cache=False)
        assert first["blocks_cached"] == 0
        assert first["blocks_evaluated"] == first["blocks_total"] > 0

        # extend the workload axes: the covered hypercube must be reused
        superset = _resolved(
            SweepGrid(
                apps=("nerf", "nsdf", "gia"),
                scale_factors=(8, 16, 32),
                clocks_ghz=GRID.clocks_ghz,
                n_engines=GRID.n_engines,
            )
        )
        second = new_tier_counters()
        result = sweep_with_store(store, superset, counters=second, use_cache=False)
        assert second["blocks_cached"] == first["blocks_total"]
        assert second["blocks_evaluated"] == (
            second["blocks_total"] - second["blocks_cached"]
        )
        reference = sweep_grid(superset, engine="vectorized", use_cache=False)
        assert_bit_identical(result, reference)

    def test_identical_grid_is_a_whole_sweep_disk_hit(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        grid = _resolved()
        sweep_with_store(store, grid, use_cache=False)
        counters = new_tier_counters()
        sweep_with_store(store, grid, counters=counters, use_cache=False)
        assert counters["disk_hits"] == 1
        assert counters["evaluations"] == 0
        assert counters["blocks_evaluated"] == 0

    def test_extending_an_architecture_axis_re_evaluates(self, tmp_path):
        # architecture axes live *inside* a block, so extending one
        # changes the block content (a documented non-goal of reuse)
        store = ResultStore(str(tmp_path / "store"))
        first = new_tier_counters()
        sweep_with_store(store, _resolved(), counters=first, use_cache=False)
        wider = _resolved(
            SweepGrid(
                apps=GRID.apps, scale_factors=GRID.scale_factors,
                clocks_ghz=(0.8, 1.0, 1.2), n_engines=GRID.n_engines,
            )
        )
        second = new_tier_counters()
        result = sweep_with_store(store, wider, counters=second, use_cache=False)
        assert second["blocks_cached"] == 0
        reference = sweep_grid(wider, engine="vectorized", use_cache=False)
        assert_bit_identical(result, reference)

    def test_block_round_trip_is_exact(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        grid = _resolved()
        plan = store_block_plan(grid)
        sweep_with_store(store, grid, use_cache=False)
        for placement, task in plan:
            key = block_fingerprint(task)
            block = store.load_block(key, shard_task_shape(placement))
            assert block is not None
            assert set(block) == set(BLOCK_ARRAY_FIELDS)


# ---------------------------------------------------------------------------
# pre-registry warm-store compatibility
# ---------------------------------------------------------------------------

#: a store written by the pre-axis-registry code (fixture npz + index.db,
#: committed verbatim) — registering the encoding axes must not change a
#: single fingerprint, so it reads back hit for hit
PRE_REGISTRY_STORE = os.path.join(
    os.path.dirname(__file__), "fixtures", "warm_store_pre_registry"
)
#: the grid the fixture store was evaluated over, spelled with the seed
#: eight axes only (extension axes stay unset/inherit)
PRE_REGISTRY_GRID = SweepGrid(
    apps=("nerf", "gia"),
    schemes=("multi_res_hashgrid",),
    scale_factors=(8, 32),
    pixel_counts=(2_073_600,),
    clocks_ghz=(1.2, 1.695),
    grid_sram_kb=(512, 1024),
    n_engines=(16,),
    n_batches=(8, 16),
)
#: frozen when the fixture was written, before the registry refactor
PRE_REGISTRY_CHECKSUM = 137.91662944465514


class TestPreRegistryStoreCompatibility:
    def _copy(self, tmp_path):
        root = str(tmp_path / "store")
        shutil.copytree(PRE_REGISTRY_STORE, root)
        return root

    def test_whole_sweep_is_a_disk_hit(self, tmp_path):
        store = ResultStore(self._copy(tmp_path))
        counters = new_tier_counters()
        result = sweep_with_store(
            store, _resolved(PRE_REGISTRY_GRID), counters=counters,
            use_cache=False,
        )
        assert counters["disk_hits"] == 1
        assert counters["evaluations"] == 0
        assert counters["blocks_evaluated"] == 0
        assert float(np.asarray(result.accelerated_ms).sum()) == (
            PRE_REGISTRY_CHECKSUM
        )
        reference = sweep_grid(
            _resolved(PRE_REGISTRY_GRID), engine="vectorized", use_cache=False
        )
        assert_bit_identical(result, reference)

    def test_every_block_is_a_cache_hit(self, tmp_path):
        # drop the assembled-sweep entry: the blockwise path must find
        # every pre-refactor block under today's fingerprints
        root = self._copy(tmp_path)
        shutil.rmtree(os.path.join(root, "sweeps"))
        store = ResultStore(root)
        counters = new_tier_counters()
        result = sweep_with_store(
            store, _resolved(PRE_REGISTRY_GRID), counters=counters,
            use_cache=False,
        )
        assert counters["blocks_total"] > 0
        assert counters["blocks_cached"] == counters["blocks_total"]
        assert counters["blocks_evaluated"] == 0
        assert float(np.asarray(result.accelerated_ms).sum()) == (
            PRE_REGISTRY_CHECKSUM
        )

    def test_unswept_extension_axes_share_the_warm_fingerprint(self, tmp_path):
        # the same grid with the extension axes spelled explicitly at
        # their inherit sentinels must address the very same store entry
        from repro.core.axes import (
            GRIDTYPE_AUTO, LOG2_HASHMAP_INHERIT, PER_LEVEL_SCALE_INHERIT,
        )

        spelled = SweepGrid(
            apps=PRE_REGISTRY_GRID.apps,
            schemes=PRE_REGISTRY_GRID.schemes,
            scale_factors=PRE_REGISTRY_GRID.scale_factors,
            pixel_counts=PRE_REGISTRY_GRID.pixel_counts,
            clocks_ghz=PRE_REGISTRY_GRID.clocks_ghz,
            grid_sram_kb=PRE_REGISTRY_GRID.grid_sram_kb,
            n_engines=PRE_REGISTRY_GRID.n_engines,
            n_batches=PRE_REGISTRY_GRID.n_batches,
            gridtypes=(GRIDTYPE_AUTO,),
            log2_hashmap_sizes=(LOG2_HASHMAP_INHERIT,),
            per_level_scales=(PER_LEVEL_SCALE_INHERIT,),
        )
        assert sweep_fingerprint(_resolved(spelled), None) == sweep_fingerprint(
            _resolved(PRE_REGISTRY_GRID), None
        )
        store = ResultStore(self._copy(tmp_path))
        counters = new_tier_counters()
        sweep_with_store(
            store, _resolved(spelled), counters=counters, use_cache=False
        )
        assert counters["disk_hits"] == 1
        assert counters["blocks_evaluated"] == 0


# ---------------------------------------------------------------------------
# corruption handling
# ---------------------------------------------------------------------------


def _sweep_entry_path(store, grid):
    return store.sweep_path(sweep_fingerprint(grid, None))


class TestCorruption:
    def test_truncated_sweep_entry_degrades_to_re_evaluation(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        grid = _resolved()
        sweep_with_store(store, grid, use_cache=False)
        path = _sweep_entry_path(store, grid)
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) // 2)

        counters = new_tier_counters()
        with pytest.warns(StoreCorruptionWarning):
            result = sweep_with_store(
                store, grid, counters=counters, use_cache=False
            )
        # the corrupt whole-sweep entry missed, but the blocks survived:
        # re-assembly is pure reuse, and the result is still correct
        assert counters["disk_hits"] == 0
        assert counters["evaluations"] == 1
        assert counters["blocks_evaluated"] == 0
        assert os.path.exists(path + ".corrupt")
        assert store.counters["corrupt_dropped"] == 1
        reference = sweep_grid(grid, engine="vectorized", use_cache=False)
        assert_bit_identical(result, reference)
        # the re-persisted entry is clean again
        assert store.load_sweep(sweep_fingerprint(grid, None)) is not None

    def test_garbage_sweep_entry_degrades(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        grid = _resolved()
        sweep_with_store(store, grid, use_cache=False)
        path = _sweep_entry_path(store, grid)
        with open(path, "wb") as f:
            f.write(b"not an npz at all")
        with pytest.warns(StoreCorruptionWarning):
            assert store.load_sweep(sweep_fingerprint(grid, None)) is None

    def test_corrupt_block_is_quarantined_and_re_evaluated(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        grid = _resolved()
        sweep_with_store(store, grid, use_cache=False)
        placement, task = store_block_plan(grid)[0]
        block_path = os.path.join(
            str(tmp_path / "store"), "blocks",
            fingerprint_digest(block_fingerprint(task)) + ".npz",
        )
        with open(block_path, "wb") as f:
            f.write(b"\x00" * 16)
        # drop the whole-sweep entry so assembly must walk the blocks
        os.unlink(_sweep_entry_path(store, grid))

        counters = new_tier_counters()
        with pytest.warns(StoreCorruptionWarning):
            result = sweep_with_store(
                store, grid, counters=counters, use_cache=False
            )
        assert counters["blocks_evaluated"] == 1  # only the corrupt one
        assert counters["blocks_cached"] == counters["blocks_total"] - 1
        reference = sweep_grid(grid, engine="vectorized", use_cache=False)
        assert_bit_identical(result, reference)

    def test_corrupt_index_is_rebuilt_from_the_files(self, tmp_path):
        root = str(tmp_path / "store")
        store = ResultStore(root)
        grid = _resolved()
        sweep_with_store(store, grid, use_cache=False)
        n_blocks = store.stats()["blocks"]["count"]
        store.close()
        with open(os.path.join(root, "index.db"), "wb") as f:
            f.write(b"this is not a sqlite database, not even close")

        with pytest.warns(StoreCorruptionWarning):
            reopened = ResultStore(root)
        stats = reopened.stats()
        assert stats["sweeps"]["count"] == 1
        assert stats["blocks"]["count"] == n_blocks
        assert reopened.load_sweep(sweep_fingerprint(grid, None)) is not None

    def test_lost_index_row_is_repaired_on_load(self, tmp_path):
        root = str(tmp_path / "store")
        store = ResultStore(root)
        grid = _resolved()
        sweep_with_store(store, grid, use_cache=False)
        store._forget("sweep", fingerprint_digest(sweep_fingerprint(grid, None)))
        assert store.stats()["sweeps"]["count"] == 0
        assert store.load_sweep(sweep_fingerprint(grid, None)) is not None
        assert store.stats()["sweeps"]["count"] == 1


# ---------------------------------------------------------------------------
# content addressing
# ---------------------------------------------------------------------------


class TestContentAddressing:
    def test_digest_is_stable_and_hex(self):
        key = sweep_fingerprint(_resolved(), None)
        digest = fingerprint_digest(key)
        assert digest == fingerprint_digest(key)
        assert len(digest) == 64
        int(digest, 16)  # pure hex

    def test_calibration_perturbation_misses_the_store(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        grid = _resolved()
        sweep_with_store(store, grid, use_cache=False)
        original = fitted.BATCH_OVERHEAD_SCALE_EXPONENT
        try:
            fitted.BATCH_OVERHEAD_SCALE_EXPONENT = original + 0.125
            counters = new_tier_counters()
            sweep_with_store(store, grid, counters=counters, use_cache=False)
            # nothing persisted under the nominal calibration is
            # addressable: the perturbed run evaluates everything
            assert counters["disk_hits"] == 0
            assert counters["blocks_cached"] == 0
            assert counters["blocks_evaluated"] == counters["blocks_total"]
        finally:
            fitted.BATCH_OVERHEAD_SCALE_EXPONENT = original
        # and the nominal entries are still there, untouched
        counters = new_tier_counters()
        sweep_with_store(store, grid, counters=counters, use_cache=False)
        assert counters["disk_hits"] == 1

    def test_save_is_idempotent(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        grid = _resolved()
        result = sweep_grid(grid, engine="vectorized", use_cache=False)
        key = sweep_fingerprint(grid, None)
        store.save_sweep(key, result)
        store.save_sweep(key, result)  # already on disk: not rewritten
        assert store.counters["sweep_saves"] == 1
        assert store.stats()["sweeps"]["count"] == 1


# ---------------------------------------------------------------------------
# npz I/O layer
# ---------------------------------------------------------------------------


class TestNpzIO:
    def test_round_trip_mmap_and_eager(self, tmp_path):
        path = str(tmp_path / "arrays.npz")
        arrays = {
            "a": np.arange(24, dtype=np.float64).reshape(2, 3, 4),
            "scalar": np.float64(3.25),
        }
        write_arrays_atomic(path, arrays)
        for mmap in (True, False):
            out = read_arrays(path, mmap=mmap)
            assert np.array_equal(out["a"], arrays["a"])
            assert out["a"].shape == (2, 3, 4)
            assert float(out["scalar"]) == 3.25
            with pytest.raises((ValueError, RuntimeError)):
                out["a"][0, 0, 0] = 99.0  # read-only, mapped or not

    def test_no_temp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "arrays.npz")
        write_arrays_atomic(path, {"a": np.zeros(3)})
        assert sorted(os.listdir(tmp_path)) == ["arrays.npz"]

    def test_truncated_file_raises_integrity_error(self, tmp_path):
        path = str(tmp_path / "arrays.npz")
        write_arrays_atomic(path, {"a": np.arange(1000, dtype=np.float64)})
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) - 4000)
        with pytest.raises(StoreIntegrityError):
            read_arrays(path)

    def test_garbage_raises_integrity_error(self, tmp_path):
        path = str(tmp_path / "garbage.npz")
        with open(path, "wb") as f:
            f.write(b"PK\x03\x04 but then nonsense")
        with pytest.raises(StoreIntegrityError):
            read_arrays(path)


# ---------------------------------------------------------------------------
# stats plumbing
# ---------------------------------------------------------------------------


class TestStats:
    def test_store_stats_shape(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        sweep_with_store(store, _resolved(), use_cache=False)
        stats = store.stats()
        assert stats["sweeps"]["count"] == 1
        assert stats["sweeps"]["bytes"] > 0
        assert stats["blocks"]["count"] > 0
        assert stats["sweep_saves"] == 1
        assert stats["block_saves"] == stats["blocks"]["count"]

    def test_service_stats_expose_the_tiers(self, tmp_path):
        service = SweepService(engine="vectorized", store=str(tmp_path / "s"))
        asyncio.run(service.sweep(GRID))
        asyncio.run(service.sweep(GRID))
        stats = service.stats()
        assert stats["cache"]["ram_hits"] == 1
        assert stats["cache"]["disk_hits"] == 0
        assert stats["cache"]["evaluations"] == 1
        assert stats["store"]["blocks_total"] == stats["store"]["blocks_evaluated"]
        # the persisted catalogue is visible through the same endpoint
        assert stats["store"]["sweeps"]["count"] == 1
        assert json.dumps(stats)  # /stats must stay JSON-serializable
