"""Tests for isosurface extraction and image metrics."""

import numpy as np
import pytest

from repro.graphics import Box, Sphere, default_sdf_scene
from repro.graphics.meshing import TriangleMesh, marching_tetrahedra
from repro.graphics.metrics import mse, psnr, ssim


class TestTriangleMesh:
    def test_validation(self):
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((3, 2)), np.zeros((1, 3), dtype=int))
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((3, 3)), np.zeros((1, 2), dtype=int))
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((3, 3)), np.array([[0, 1, 5]]))

    def test_surface_area_of_unit_triangle(self):
        mesh = TriangleMesh(
            np.array([[0, 0, 0], [1.0, 0, 0], [0, 1.0, 0]]),
            np.array([[0, 1, 2]]),
        )
        assert mesh.surface_area() == pytest.approx(0.5)

    def test_face_normals_unit(self):
        mesh = TriangleMesh(
            np.array([[0, 0, 0], [1.0, 0, 0], [0, 1.0, 0]]),
            np.array([[0, 1, 2]]),
        )
        normal = mesh.face_normals()[0]
        np.testing.assert_allclose(np.abs(normal), [0, 0, 1], atol=1e-12)

    def test_obj_export(self):
        mesh = TriangleMesh(
            np.array([[0, 0, 0], [1.0, 0, 0], [0, 1.0, 0]]),
            np.array([[0, 1, 2]]),
        )
        obj = mesh.to_obj()
        assert obj.count("v ") == 3
        assert "f 1 2 3" in obj


class TestMarchingTetrahedra:
    def test_sphere_area_accurate(self):
        mesh = marching_tetrahedra(Sphere(radius=0.35), resolution=24)
        expected = 4 * np.pi * 0.35**2
        assert mesh.surface_area() == pytest.approx(expected, rel=0.02)

    def test_sphere_vertices_on_surface(self):
        mesh = marching_tetrahedra(Sphere(radius=0.3), resolution=16)
        radii = np.linalg.norm(mesh.vertices, axis=1)
        assert np.all(np.abs(radii - 0.3) < 0.02)

    def test_box_area(self):
        mesh = marching_tetrahedra(
            Box(half_extents=(0.25, 0.25, 0.25)), resolution=24
        )
        assert mesh.surface_area() == pytest.approx(6 * 0.5 * 0.5, rel=0.1)

    def test_empty_field_yields_empty_mesh(self):
        surface_outside_bounds = Sphere(center=(5.0, 5.0, 5.0), radius=0.1)
        mesh = marching_tetrahedra(surface_outside_bounds, resolution=4)
        assert mesh.n_faces == 0
        assert mesh.surface_area() == 0.0

    def test_resolution_refines_area(self):
        """Finer grids converge toward the analytic area."""
        expected = 4 * np.pi * 0.35**2
        coarse = marching_tetrahedra(Sphere(radius=0.35), resolution=8)
        fine = marching_tetrahedra(Sphere(radius=0.35), resolution=24)
        assert abs(fine.surface_area() - expected) < abs(
            coarse.surface_area() - expected
        )

    def test_csg_scene_meshes(self):
        mesh = marching_tetrahedra(default_sdf_scene(), resolution=20)
        assert mesh.n_faces > 100
        # vertices stay inside the sampled cube
        assert mesh.vertices.min() >= -0.5 - 1e-9
        assert mesh.vertices.max() <= 0.5 + 1e-9

    def test_shared_vertices_welded(self):
        mesh = marching_tetrahedra(Sphere(radius=0.3), resolution=12)
        # a welded closed-ish surface has far fewer vertices than 3 x faces
        assert mesh.n_vertices < 1.5 * mesh.n_faces

    def test_neural_sdf_extraction(self):
        """Meshing works directly on a trained NSDF network."""
        from repro.apps import NSDFApp

        app = NSDFApp(seed=0)
        app.train(steps=50, batch_size=1024)
        mesh = marching_tetrahedra(
            lambda p: app.predict(p.astype(np.float32)), resolution=12
        )
        assert mesh.n_faces > 50

    def test_validation(self):
        with pytest.raises(ValueError):
            marching_tetrahedra(Sphere(), resolution=0)
        with pytest.raises(ValueError):
            marching_tetrahedra(Sphere(), bounds=(1.0, -1.0))


class TestSSIM:
    def test_identical_images(self, rng):
        img = rng.uniform(size=(32, 32, 3))
        assert ssim(img, img) == pytest.approx(1.0)

    def test_noise_reduces_ssim(self, rng):
        img = rng.uniform(size=(32, 32, 3))
        noisy = np.clip(img + rng.normal(scale=0.2, size=img.shape), 0, 1)
        value = ssim(img, noisy)
        assert 0.0 < value < 0.95

    def test_monotone_in_noise(self, rng):
        img = rng.uniform(size=(64, 64))
        values = [
            ssim(img, np.clip(img + rng.normal(scale=s, size=img.shape), 0, 1))
            for s in (0.05, 0.1, 0.3)
        ]
        assert values == sorted(values, reverse=True)

    def test_grayscale_supported(self, rng):
        img = rng.uniform(size=(16, 16))
        assert ssim(img, img) == pytest.approx(1.0)

    def test_validation(self, rng):
        img = rng.uniform(size=(16, 16, 3))
        with pytest.raises(ValueError):
            ssim(img, img[:8])
        with pytest.raises(ValueError):
            ssim(img, img, window=1)
        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4)), np.zeros((4, 4)), window=8)

    def test_mse_basic(self):
        assert mse(np.zeros(4), np.full(4, 0.5)) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))
