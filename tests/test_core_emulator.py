"""Tests for the NGPC cluster model, emulator, Amdahl bounds and fusion."""

import numpy as np
import pytest

from repro.apps.params import APP_NAMES, ENCODING_SCHEMES, get_config
from repro.calibration import paper
from repro.core import (
    NGPC,
    NGPCConfig,
    amdahl_bound,
    amdahl_bound_unfused,
    emulate,
    fused_rest_time_ms,
)
from repro.core.emulator import Emulator, max_pixels_within_budget, speedup_table
from repro.core.fusion import DEFAULT_FUSION, FusionModel, check_fusion_matches_paper
from repro.core.ngpc import PipelineSchedule, bandwidth_model
from repro.gpu.baseline import FHD_PIXELS, baseline_frame_time_ms


class TestFusion:
    def test_fusion_speedup_matches_paper(self):
        check_fusion_matches_paper()
        assert DEFAULT_FUSION.speedup == pytest.approx(9.94, rel=0.002)

    def test_fused_rest_faster(self):
        for app in APP_NAMES:
            fused = fused_rest_time_ms(app, "multi_res_hashgrid")
            from repro.gpu.baseline import baseline_kernel_times_ms

            unfused = baseline_kernel_times_ms(app, "multi_res_hashgrid")["rest"]
            assert fused == pytest.approx(unfused / DEFAULT_FUSION.speedup)

    def test_validation(self):
        with pytest.raises(ValueError):
            FusionModel(launch_reduction=0.5)


class TestPipelineSchedule:
    def test_makespan_formula(self):
        s = PipelineSchedule(ngpc_time_ms=16.0, rest_time_ms=8.0, n_batches=16)
        # fill 1.0 + 15 bottleneck batches of 1.0 + drain 0.5
        assert s.total_ms == pytest.approx(1.0 + 15 * 1.0 + 0.5)
        assert s.bottleneck == "ngpc"

    def test_rest_bound_when_ngpc_fast(self):
        s = PipelineSchedule(ngpc_time_ms=1.0, rest_time_ms=8.0, n_batches=16)
        assert s.bottleneck == "rest"
        # total approaches fill + rest time
        assert s.total_ms == pytest.approx(1.0 / 16 + 8.0)

    def test_overlap_beats_serial(self):
        s = PipelineSchedule(ngpc_time_ms=10.0, rest_time_ms=10.0, n_batches=16)
        assert s.total_ms < 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineSchedule(-1.0, 1.0, 4)
        with pytest.raises(ValueError):
            PipelineSchedule(1.0, 1.0, 0)


class TestBandwidth:
    def test_table3_reproduced(self):
        """Table III: bandwidths within 1 %, access times within 1 %."""
        for app, (in_bw, out_bw, total_bw, access) in paper.TABLE3.items():
            report = bandwidth_model(app)
            assert report.input_gbps == pytest.approx(in_bw, rel=0.01)
            assert report.output_gbps == pytest.approx(out_bw, rel=0.01)
            assert report.total_gbps == pytest.approx(total_bw, rel=0.01)
            assert report.access_time_ms == pytest.approx(access, rel=0.01)

    def test_fraction_of_gpu_bandwidth(self):
        """Section VI: ~24 % of GPU bandwidth for NeRF, ~7 % for others."""
        assert bandwidth_model("nerf").fraction_of_gpu_bandwidth == pytest.approx(
            0.24, abs=0.02
        )
        assert bandwidth_model("nsdf").fraction_of_gpu_bandwidth == pytest.approx(
            0.074, abs=0.01
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            bandwidth_model("dlss")
        with pytest.raises(ValueError):
            bandwidth_model("nerf", n_pixels=0)


class TestAmdahl:
    def test_bounds_positive_and_fused_larger(self):
        for app in APP_NAMES:
            for scheme in ENCODING_SCHEMES:
                fused = amdahl_bound(app, scheme)
                unfused = amdahl_bound_unfused(app, scheme)
                assert fused > unfused > 1.0

    def test_nerf_hashgrid_bound_near_max_speedup(self):
        """9.94 / 0.17 = 58.5, just above the reported 58.36x."""
        assert amdahl_bound("nerf", "multi_res_hashgrid") == pytest.approx(
            58.5, abs=0.2
        )

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            amdahl_bound("nerf", "fourier")


class TestEmulator:
    def test_every_run_respects_amdahl(self):
        """The paper's Section VI sanity check, across the full sweep."""
        for app in APP_NAMES:
            for scheme in ENCODING_SCHEMES:
                for scale in (8, 16, 32, 64):
                    result = emulate(app, scheme, scale)
                    assert result.respects_amdahl(), (app, scheme, scale)
                    assert result.speedup > 1.0

    def test_speedup_monotone_in_scale(self):
        for app in APP_NAMES:
            speedups = [
                emulate(app, "multi_res_hashgrid", s).speedup for s in (8, 16, 32, 64)
            ]
            assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))

    def test_fig12_averages_within_10pct(self):
        """Four-app averages track the paper at every scale and scheme."""
        for scheme, targets in paper.FIG12_AVERAGE_SPEEDUPS.items():
            table = speedup_table(scheme)
            for scale, target in targets.items():
                assert table[scale]["average"] == pytest.approx(target, rel=0.10), (
                    scheme,
                    scale,
                )

    def test_max_speedup_near_58x(self):
        """"Up to 58.36x": the NeRF hashgrid peak lands within 5 %."""
        best = max(
            emulate("nerf", "multi_res_hashgrid", s).speedup for s in (8, 16, 32, 64)
        )
        assert best == pytest.approx(paper.MAX_END_TO_END_SPEEDUP, rel=0.05)

    def test_baseline_matches_gpu_model(self):
        r = emulate("nerf", "multi_res_hashgrid", 8)
        assert r.baseline_ms == pytest.approx(
            baseline_frame_time_ms("nerf", "multi_res_hashgrid")
        )

    def test_result_decomposition_consistent(self):
        r = emulate("nsdf", "multi_res_hashgrid", 16)
        assert r.accelerated_ms > 0
        assert r.encoding_engine_ms > 0
        assert r.mlp_engine_ms > 0
        assert r.fps == pytest.approx(1000.0 / r.accelerated_ms)

    def test_validation(self):
        emulator = Emulator()
        with pytest.raises(ValueError):
            emulator.run("dlss", "multi_res_hashgrid")
        with pytest.raises(ValueError):
            emulator.run("nerf", "fourier")


class TestFig14:
    def test_ngpc_enables_more_pixels_than_baseline(self):
        for app in APP_NAMES:
            with_ngpc = max_pixels_within_budget(app, "multi_res_hashgrid", 64, 60)
            without = max_pixels_within_budget(
                app, "multi_res_hashgrid", 64, 60, use_ngpc=False
            )
            assert with_ngpc > without

    def test_headline_capabilities(self):
        """NeRF renders 4K at 30 FPS; GIA and NVR render 8K at 120 FPS.

        NSDF's 8K @ 120 FPS claim lands at ~96 % of the 8K pixel count in
        our model (documented in EXPERIMENTS.md), so it is checked with
        that tolerance.
        """
        assert max_pixels_within_budget("nerf", "multi_res_hashgrid", 64, 30) >= (
            paper.RESOLUTIONS["4k"]
        )
        for app in ("gia", "nvr"):
            assert max_pixels_within_budget(app, "multi_res_hashgrid", 64, 120) >= (
                paper.RESOLUTIONS["8k"]
            )
        nsdf = max_pixels_within_budget("nsdf", "multi_res_hashgrid", 64, 120)
        assert nsdf >= 0.95 * paper.RESOLUTIONS["8k"]

    def test_validation(self):
        with pytest.raises(ValueError):
            max_pixels_within_budget("nerf", "multi_res_hashgrid", 64, 0)


class TestNGPCCluster:
    def test_dma_overhead_scales(self):
        ngpc8 = NGPC(NGPCConfig(scale_factor=8))
        ngpc64 = NGPC(NGPCConfig(scale_factor=64))
        assert ngpc8.dma_overhead_ms("nerf", FHD_PIXELS) > ngpc64.dma_overhead_ms(
            "nerf", FHD_PIXELS
        )

    def test_frame_time_positive(self):
        ngpc = NGPC(NGPCConfig(scale_factor=32))
        t = ngpc.frame_time_ms("gia", "multi_res_hashgrid")
        assert 0 < t < baseline_frame_time_ms("gia", "multi_res_hashgrid")
