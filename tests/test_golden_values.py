"""Golden-value regression net for the analytic models.

Freezes today's scalar-model outputs — the Fig. 12 end-to-end speedups,
the Fig. 13 kernel speedups, the Table III bandwidths and the Fig. 15
area/power bill — as constants at 1e-9 relative tolerance, so the
vectorized sweep engine (or any future refactor for speed) cannot
silently drift the reproduction.  Both the scalar and the batched paths
are checked against the same constants.

If a model change is *intentional*, regenerate the constants with
``PYTHONPATH=src python tools/freeze_golden_values.py`` and say why in
the commit message.
"""

import numpy as np
import pytest

from repro.apps.params import APP_NAMES, ENCODING_SCHEMES
from repro.core.area_power import ngpc_area_power, ngpc_area_power_batch
from repro.core.config import NGPCConfig, SCALE_FACTORS
from repro.core.emulator import emulate, emulate_batch
from repro.core.encoding_engine import encoding_kernel_speedup
from repro.core.mlp_engine import mlp_kernel_speedup
from repro.core.ngpc import bandwidth_model, bandwidth_model_batch

RTOL = 1e-9

# ---------------------------------------------------------------------------
# frozen constants (regenerate with tools/freeze_golden_values.py)
# ---------------------------------------------------------------------------

# (app, scale) -> per-frame emulator decomposition, hashgrid @ FHD
GOLDEN_EMULATE = {
    ('nerf', 8): {
        'baseline_ms': 231.0,
        'accelerated_ms': 10.656209859430747,
        'encoding_engine_ms': 1.2626929235196775,
        'mlp_engine_ms': 0.2716291255258016,
        'dma_ms': 8.874963828011376,
        'fused_rest_ms': 3.9507837179822536,
    },
    ('nerf', 16): {
        'baseline_ms': 231.0,
        'accelerated_ms': 6.497387123798791,
        'encoding_engine_ms': 0.6313535414058565,
        'mlp_engine_ms': 0.1358216424089185,
        'dma_ms': 5.483287957610125,
        'fused_rest_ms': 3.9507837179822536,
    },
    ('nerf', 32): {
        'baseline_ms': 231.0,
        'accelerated_ms': 4.186495231438562,
        'encoding_engine_ms': 0.31568385034894597,
        'mlp_engine_ms': 0.06791790085047694,
        'dma_ms': 3.387782464101518,
        'fused_rest_ms': 3.9507837179822536,
    },
    ('nerf', 64): {
        'baseline_ms': 231.0,
        'accelerated_ms': 4.093590907662987,
        'encoding_engine_ms': 0.1578490048204907,
        'mlp_engine_ms': 0.03396603007125617,
        'dma_ms': 2.0931,
        'fused_rest_ms': 3.9507837179822536,
    },
    ('nsdf', 8): {
        'baseline_ms': 27.87,
        'accelerated_ms': 1.782417377213176,
        'encoding_engine_ms': 0.47351869587740125,
        'mlp_engine_ms': 0.05660061059073669,
        'dma_ms': 1.2198782157177739,
        'fused_rest_ms': 0.518717680436226,
    },
    ('nsdf', 16): {
        'baseline_ms': 27.87,
        'accelerated_ms': 1.0511805173954367,
        'encoding_engine_ms': 0.23676642758471833,
        'mlp_engine_ms': 0.028307384941386043,
        'dma_ms': 0.7536868498420682,
        'fused_rest_ms': 0.518717680436226,
    },
    ('nsdf', 32): {
        'baseline_ms': 27.87,
        'accelerated_ms': 0.6306271314284683,
        'encoding_engine_ms': 0.11839029343837686,
        'mlp_engine_ms': 0.014160772116710721,
        'dma_ms': 0.46565621084611664,
        'fused_rest_ms': 0.518717680436226,
    },
    ('nsdf', 64): {
        'baseline_ms': 27.87,
        'accelerated_ms': 0.5408420361905747,
        'encoding_engine_ms': 0.059202226365206126,
        'mlp_engine_ms': 0.007087465704373059,
        'dma_ms': 0.2877,
        'fused_rest_ms': 0.518717680436226,
    },
    ('gia', 8): {
        'baseline_ms': 2.12,
        'accelerated_ms': 0.31125040664886755,
        'encoding_engine_ms': 0.07893158205626304,
        'mlp_engine_ms': 0.009445234508485613,
        'dma_ms': 0.2179413982895154,
        'fused_rest_ms': 0.07891506871365621,
    },
    ('gia', 16): {
        'baseline_ms': 2.12,
        'accelerated_ms': 0.1837871892678047,
        'encoding_engine_ms': 0.039472870674149216,
        'mlp_engine_ms': 0.004729696900260506,
        'dma_ms': 0.13465242989879148,
        'fused_rest_ms': 0.07891506871365621,
    },
    ('gia', 32): {
        'baseline_ms': 2.12,
        'accelerated_ms': 0.11024099336355665,
        'encoding_engine_ms': 0.01974351498309231,
        'mlp_engine_ms': 0.002371928096147952,
        'dma_ms': 0.08319335848971288,
        'fused_rest_ms': 0.07891506871365621,
    },
    ('gia', 64): {
        'baseline_ms': 2.12,
        'accelerated_ms': 0.08281956126563468,
        'encoding_engine_ms': 0.009878837137563854,
        'mlp_engine_ms': 0.0011930436940916752,
        'dma_ms': 0.0514,
        'fused_rest_ms': 0.07891506871365621,
    },
    ('nvr', 8): {
        'baseline_ms': 6.32,
        'accelerated_ms': 1.080884705722567,
        'encoding_engine_ms': 0.31568385034894597,
        'mlp_engine_ms': 0.03773846015783626,
        'dma_ms': 0.7123376442147585,
        'fused_rest_ms': 0.24199601601641885,
    },
    ('nvr', 16): {
        'baseline_ms': 6.32,
        'accelerated_ms': 0.6319591749432809,
        'encoding_engine_ms': 0.1578490048204907,
        'mlp_engine_ms': 0.018876309724935827,
        'dma_ms': 0.4401091093968282,
        'fused_rest_ms': 0.24199601601641885,
    },
    ('nvr', 32): {
        'baseline_ms': 6.32,
        'accelerated_ms': 0.3754176030963539,
        'encoding_engine_ms': 0.07893158205626304,
        'mlp_engine_ms': 0.009445234508485613,
        'dma_ms': 0.2719160355305791,
        'fused_rest_ms': 0.24199601601641885,
    },
    ('nvr', 64): {
        'baseline_ms': 6.32,
        'accelerated_ms': 0.2552586764898195,
        'encoding_engine_ms': 0.039472870674149216,
        'mlp_engine_ms': 0.004729696900260506,
        'dma_ms': 0.168,
        'fused_rest_ms': 0.24199601601641885,
    },
}

# scheme -> scale -> four-app average end-to-end speedup (Fig. 12)
GOLDEN_FIG12_AVERAGE = {
    'multi_res_hashgrid': {
        8: 12.492966894750651,
        16: 20.900381978079913,
        32: 33.85917578604029,
        64: 39.57936165708292,
    },
    'multi_res_densegrid': {
        8: 8.987633623971657,
        16: 14.581022960283942,
        32: 22.433716688374933,
        64: 24.34588293156978,
    },
    'low_res_densegrid': {
        8: 9.377525257256385,
        16: 15.043155533891234,
        32: 22.51666696815104,
        64: 24.006252714526198,
    },
}

# scheme -> four-app mean kernel speedups at scale 64 (Fig. 13)
GOLDEN_FIG13_AT_64 = {
    'multi_res_hashgrid': {'encoding': 245.93991063447604, 'mlp': 1229.3261820884532},
    'multi_res_densegrid': {'encoding': 378.1304820782806, 'mlp': 1065.414024232888},
    'low_res_densegrid': {'encoding': 2286.2113650872534, 'mlp': 1442.3095503757131},
}

# app -> NGPC IO bandwidth at 4K 60 FPS (Table III)
GOLDEN_BANDWIDTH = {
    'nerf': {
        'input_gbps': 69.585371136,
        'output_gbps': 46.390247424,
        'total_gbps': 231.95123712000003,
        'access_time_ms': 4.129303516342662,
    },
    'nsdf': {
        'input_gbps': 34.792685568,
        'output_gbps': 34.792685568,
        'total_gbps': 69.585371136,
        'access_time_ms': 1.2387910549027983,
    },
    'gia': {
        'input_gbps': 34.792685568,
        'output_gbps': 34.792685568,
        'total_gbps': 69.585371136,
        'access_time_ms': 1.2387910549027983,
    },
    'nvr': {
        'input_gbps': 34.792685568,
        'output_gbps': 34.792685568,
        'total_gbps': 69.585371136,
        'access_time_ms': 1.2387910549027983,
    },
}

# scale -> NGPC area/power at 7 nm (Fig. 15)
GOLDEN_AREA_POWER = {
    8: {'area_mm2_7nm': 28.539264767999995, 'power_w_7nm': 9.799813901158402},
    16: {'area_mm2_7nm': 57.07852953599999, 'power_w_7nm': 19.599627802316803},
    32: {'area_mm2_7nm': 114.15705907199998, 'power_w_7nm': 39.199255604633606},
    64: {'area_mm2_7nm': 228.31411814399996, 'power_w_7nm': 78.39851120926721},
}

# (clock GHz, grid SRAM KB, engines, batches) -> accelerated ms;
# NeRF hashgrid @ FHD, NGPC-8 (architecture-axis golden net)
GOLDEN_ARCH_GRID = {
    (1.2, 512, 16, 8): 14.211342318743213,
    (1.2, 512, 16, 16): 13.964418336369324,
    (1.2, 512, 32, 8): 11.981925125653783,
    (1.2, 512, 32, 16): 11.735001143279893,
    (1.2, 1024, 16, 8): 11.536041687035896,
    (1.2, 1024, 16, 16): 11.289117704662006,
    (1.2, 1024, 32, 8): 10.644274809800125,
    (1.2, 1024, 32, 16): 10.397350827426235,
    (1.695, 512, 16, 8): 12.7971519881461,
    (1.695, 512, 16, 16): 12.55022800577221,
    (1.695, 512, 32, 8): 11.218803532861546,
    (1.695, 512, 32, 16): 10.971879550487657,
    (1.695, 1024, 16, 8): 10.903133841804637,
    (1.695, 1024, 16, 16): 10.656209859430747,
    (1.695, 1024, 32, 8): 10.271794459690815,
    (1.695, 1024, 32, 16): 10.024870477316925,
}


# ---------------------------------------------------------------------------
# scalar path vs goldens
# ---------------------------------------------------------------------------


class TestScalarGoldens:
    @pytest.mark.parametrize("app", APP_NAMES)
    @pytest.mark.parametrize("scale", SCALE_FACTORS)
    def test_emulate_pinned(self, app, scale):
        result = emulate(app, "multi_res_hashgrid", scale)
        for name, golden in GOLDEN_EMULATE[(app, scale)].items():
            assert getattr(result, name) == pytest.approx(golden, rel=RTOL), name

    @pytest.mark.parametrize("scheme", ENCODING_SCHEMES)
    def test_fig12_averages_pinned(self, scheme):
        for scale, golden in GOLDEN_FIG12_AVERAGE[scheme].items():
            speedups = [emulate(a, scheme, scale).speedup for a in APP_NAMES]
            assert sum(speedups) / len(speedups) == pytest.approx(golden, rel=RTOL)

    @pytest.mark.parametrize("scheme", ENCODING_SCHEMES)
    def test_fig13_kernel_speedups_pinned(self, scheme):
        enc = sum(encoding_kernel_speedup(a, scheme, 64) for a in APP_NAMES) / 4
        mlp = sum(mlp_kernel_speedup(a, scheme, 64) for a in APP_NAMES) / 4
        assert enc == pytest.approx(GOLDEN_FIG13_AT_64[scheme]["encoding"], rel=RTOL)
        assert mlp == pytest.approx(GOLDEN_FIG13_AT_64[scheme]["mlp"], rel=RTOL)

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_bandwidth_pinned(self, app):
        report = bandwidth_model(app)
        for name, golden in GOLDEN_BANDWIDTH[app].items():
            assert getattr(report, name) == pytest.approx(golden, rel=RTOL), name

    @pytest.mark.parametrize("scale", SCALE_FACTORS)
    def test_area_power_pinned(self, scale):
        report = ngpc_area_power(NGPCConfig(scale_factor=scale))
        golden = GOLDEN_AREA_POWER[scale]
        assert report.area_mm2_7nm == pytest.approx(golden["area_mm2_7nm"], rel=RTOL)
        assert report.power_w_7nm == pytest.approx(golden["power_w_7nm"], rel=RTOL)


# ---------------------------------------------------------------------------
# batched path vs the same goldens
# ---------------------------------------------------------------------------


class TestBatchedGoldens:
    @pytest.mark.parametrize("app", APP_NAMES)
    def test_emulate_batch_pinned(self, app):
        block = emulate_batch(app, "multi_res_hashgrid", SCALE_FACTORS)
        for k, scale in enumerate(SCALE_FACTORS):
            for name, golden in GOLDEN_EMULATE[(app, scale)].items():
                assert float(block[name][k, 0]) == pytest.approx(
                    golden, rel=RTOL
                ), (name, scale)

    @pytest.mark.parametrize("scheme", ENCODING_SCHEMES)
    def test_fig12_averages_batch_pinned(self, scheme):
        speedups = np.stack(
            [
                emulate_batch(app, scheme, SCALE_FACTORS)["speedup"][:, 0]
                for app in APP_NAMES
            ]
        )
        averages = speedups.mean(axis=0)
        for k, scale in enumerate(SCALE_FACTORS):
            assert averages[k] == pytest.approx(
                GOLDEN_FIG12_AVERAGE[scheme][scale], rel=RTOL
            )

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_bandwidth_batch_pinned(self, app):
        block = bandwidth_model_batch(app, 3840 * 2160, 60.0)
        for name, golden in GOLDEN_BANDWIDTH[app].items():
            key = "access_time_ms" if name == "access_time_ms" else name
            assert float(block[key]) == pytest.approx(golden, rel=RTOL), name

    def test_area_power_batch_pinned(self):
        block = ngpc_area_power_batch(np.asarray(SCALE_FACTORS))
        for k, scale in enumerate(SCALE_FACTORS):
            golden = GOLDEN_AREA_POWER[scale]
            assert float(block["area_mm2_7nm"][k]) == pytest.approx(
                golden["area_mm2_7nm"], rel=RTOL
            )
            assert float(block["power_w_7nm"][k]) == pytest.approx(
                golden["power_w_7nm"], rel=RTOL
            )


# ---------------------------------------------------------------------------
# architecture-axis grid vs the same goldens (scalar, batched and sweep)
# ---------------------------------------------------------------------------

_ARCH_CLOCKS = (1.2, 1.695)
_ARCH_SRAMS = (512, 1024)
_ARCH_ENGINES = (16, 32)
_ARCH_BATCHES = (8, 16)


class TestArchitectureGridGoldens:
    @pytest.mark.parametrize("point", sorted(GOLDEN_ARCH_GRID))
    def test_scalar_pinned(self, point):
        from repro.core.config import NFPConfig
        from repro.core.emulator import Emulator

        clock, sram, engines, batches = point
        config = NGPCConfig(
            scale_factor=8,
            nfp=NFPConfig(
                clock_ghz=clock,
                grid_sram_kb_per_engine=sram,
                n_encoding_engines=engines,
            ),
            n_pipeline_batches=batches,
        )
        result = Emulator(config).run("nerf", "multi_res_hashgrid")
        assert result.accelerated_ms == pytest.approx(
            GOLDEN_ARCH_GRID[point], rel=RTOL
        )

    def test_batched_pinned(self):
        block = emulate_batch(
            "nerf", "multi_res_hashgrid", (8,),
            clocks_ghz=_ARCH_CLOCKS, grid_sram_kb=_ARCH_SRAMS,
            n_engines=_ARCH_ENGINES, n_batches=_ARCH_BATCHES,
        )
        for c, clock in enumerate(_ARCH_CLOCKS):
            for g, sram in enumerate(_ARCH_SRAMS):
                for e, engines in enumerate(_ARCH_ENGINES):
                    for b, batches in enumerate(_ARCH_BATCHES):
                        golden = GOLDEN_ARCH_GRID[(clock, sram, engines, batches)]
                        assert float(
                            block["accelerated_ms"][0, 0, c, g, e, b]
                        ) == pytest.approx(golden, rel=RTOL), (clock, sram, engines, batches)

    @pytest.mark.parametrize("engine", ("vectorized", "scalar", "process"))
    def test_sweep_grid_pinned(self, engine):
        from repro.core.dse import SweepGrid, sweep_grid

        grid = SweepGrid(
            apps=("nerf",),
            schemes=("multi_res_hashgrid",),
            scale_factors=(8,),
            clocks_ghz=_ARCH_CLOCKS,
            grid_sram_kb=_ARCH_SRAMS,
            n_engines=_ARCH_ENGINES,
            n_batches=_ARCH_BATCHES,
        )
        result = sweep_grid(
            grid, engine=engine, max_workers=2, use_cache=False
        )
        for (clock, sram, engines, batches), golden in GOLDEN_ARCH_GRID.items():
            point = result.point(
                "nerf", "multi_res_hashgrid", 8, 1920 * 1080,
                clock_ghz=clock, grid_sram_kb=sram,
                n_engines=engines, n_batches=batches,
            )
            assert point.accelerated_ms == pytest.approx(golden, rel=RTOL)
