"""Tests for repro.utils helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import (
    clamp,
    default_rng,
    derive_rng,
    ilog2,
    is_power_of_two,
    lerp,
    next_power_of_two,
    smoothstep,
)


class TestPowersOfTwo:
    def test_is_power_of_two_basic(self):
        assert is_power_of_two(1)
        assert is_power_of_two(2)
        assert is_power_of_two(1 << 24)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    @given(st.integers(min_value=0, max_value=30))
    def test_all_powers_detected(self, k):
        assert is_power_of_two(1 << k)

    @given(st.integers(min_value=1, max_value=10**6))
    def test_next_power_of_two_bounds(self, n):
        p = next_power_of_two(n)
        assert is_power_of_two(p)
        assert p >= n
        assert p < 2 * n or n == 1

    def test_next_power_of_two_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)

    @given(st.integers(min_value=0, max_value=40))
    def test_ilog2_roundtrip(self, k):
        assert ilog2(1 << k) == k

    def test_ilog2_rejects_non_power(self):
        with pytest.raises(ValueError):
            ilog2(6)


class TestInterpolationHelpers:
    @given(
        st.floats(-100, 100),
        st.floats(-100, 100),
        st.floats(0, 1),
    )
    def test_lerp_endpoints_and_range(self, a, b, t):
        assert lerp(a, b, 0.0) == pytest.approx(a)
        assert lerp(a, b, 1.0) == pytest.approx(b)
        lo, hi = min(a, b), max(a, b)
        assert lo - 1e-9 <= lerp(a, b, t) <= hi + 1e-9

    def test_clamp(self):
        x = np.array([-1.0, 0.5, 2.0])
        assert np.allclose(clamp(x, 0.0, 1.0), [0.0, 0.5, 1.0])

    def test_smoothstep_monotone_and_bounded(self):
        xs = np.linspace(-1, 2, 100)
        ys = smoothstep(0.0, 1.0, xs)
        assert np.all(np.diff(ys) >= -1e-9)
        assert ys.min() == 0.0 and ys.max() == 1.0

    def test_smoothstep_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            smoothstep(1.0, 0.0, 0.5)


class TestRng:
    def test_default_rng_passthrough(self):
        g = np.random.default_rng(7)
        assert default_rng(g) is g

    def test_default_rng_deterministic(self):
        a = default_rng(42).integers(0, 10**9)
        b = default_rng(42).integers(0, 10**9)
        assert a == b

    def test_derive_rng_streams_differ(self):
        parent = default_rng(0)
        child0 = derive_rng(parent, 0)
        parent2 = default_rng(0)
        child1 = derive_rng(parent2, 1)
        assert child0.integers(0, 10**9) != child1.integers(0, 10**9)

    def test_derive_rng_rejects_negative_stream(self):
        with pytest.raises(ValueError):
            derive_rng(default_rng(0), -1)
