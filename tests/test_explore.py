"""Acceptance suite for the adaptive exploration engine.

Three contracts, each pinned against the exhaustive dense path:

- **Golden equality**: every Pareto/cheapest/point answer an
  :class:`~repro.explore.AdaptiveExplorer` gives — through the Session
  facade or directly — is identical to the exhaustive
  :class:`~repro.core.dse.SweepResult`'s, including tie-breaks and the
  structured infeasible error, while evaluating a strict subset of the
  hypercube (≤10% on grids large enough to be worth exploring).
- **No block evaluates twice**: within one query, across queries on one
  handle, across ``session.sweep()`` calls on one design space, and —
  through the persistent store — across *processes* (a fresh explorer
  over a warm store evaluates nothing).
- **Bound-violation fallback**: the monotone-benefit assumption is
  *checked*, not trusted.  A deterministic non-monotone surface (a fake
  block runner; the real emulator is monotone by construction) must
  trip ``bound_violations`` and still produce exactly the dense
  answers via the exhaustive fallback.
"""

import asyncio

import numpy as np
import pytest

from repro.api import InfeasibleQueryError, Session, SweepGrid
from repro.api.session import ADAPTIVE_MIN_POINTS
from repro.core.dse import finalize_sweep_result, sweep_grid
from repro.explore import AdaptiveExplorer, LocalBlockRunner, StoreBlockRunner

#: multi-app, multi-scheme, tie-rich: every query kind has something to
#: bite, yet small enough to evaluate exhaustively for the golden answers
GOLDEN_GRID = SweepGrid(
    apps=("nerf", "gia"),
    schemes=("multi_res_hashgrid", "multi_res_densegrid"),
    scale_factors=(8, 16, 32, 64),
    clocks_ghz=(0.8, 1.695),
    grid_sram_kb=(512, 1024),
    n_batches=(8, 16),
)

FPS_TARGETS = (1.0, 30.0, 60.0, 240.0, 10.0**9)


def all_pareto_queries(grid):
    for scheme in grid.schemes:
        for n_pixels in grid.pixel_counts:
            for app in (None,) + tuple(grid.apps):
                yield dict(scheme=scheme, n_pixels=n_pixels, app=app)


def all_cheapest_queries(grid):
    for scheme in grid.schemes:
        for n_pixels in grid.pixel_counts:
            for app in grid.apps:
                for fps in FPS_TARGETS:
                    yield dict(app=app, fps=fps, n_pixels=n_pixels,
                               scheme=scheme)


def points_dicts(points):
    return [p.to_dict() for p in points]


# ---------------------------------------------------------------------------
# golden equality: adaptive == exhaustive, evaluating less
# ---------------------------------------------------------------------------


class TestGoldenEquality:
    @pytest.fixture(scope="class")
    def golden(self):
        return sweep_grid(GOLDEN_GRID)

    @pytest.fixture(scope="class")
    def explorer(self):
        return AdaptiveExplorer(GOLDEN_GRID)

    def test_pareto_fronts_identical(self, golden, explorer):
        for q in all_pareto_queries(golden.grid):
            got = explorer.pareto(q["scheme"], n_pixels=q["n_pixels"],
                                  app=q["app"])
            want = golden.pareto_front(q["scheme"], n_pixels=q["n_pixels"],
                                       app=q["app"])
            assert points_dicts(got) == points_dicts(want), q

    def test_cheapest_identical_including_infeasible(self, golden, explorer):
        for q in all_cheapest_queries(golden.grid):
            want = golden.cheapest_point_meeting_fps(
                q["app"], q["fps"], n_pixels=q["n_pixels"], scheme=q["scheme"]
            )
            if want is None:
                with pytest.raises(InfeasibleQueryError) as excinfo:
                    explorer.cheapest(q["app"], q["fps"],
                                      n_pixels=q["n_pixels"],
                                      scheme=q["scheme"])
                exc = excinfo.value
                assert exc.app == q["app"]
                assert exc.fps == q["fps"]
                assert exc.scheme == q["scheme"]
                # best_fps is the exact dense maximum (same float)
                i = golden.grid.apps.index(q["app"])
                j = golden.grid.schemes.index(q["scheme"])
                assert exc.best_fps == float(golden.fps[i, j, :, 0].max())
            else:
                got = explorer.cheapest(q["app"], q["fps"],
                                        n_pixels=q["n_pixels"],
                                        scheme=q["scheme"])
                assert got.to_dict() == want.to_dict(), q

    def test_point_identical(self, golden, explorer):
        got = explorer.point("gia", "multi_res_densegrid", 16,
                             golden.grid.pixel_counts[0],
                             clock_ghz=1.695, grid_sram_kb=512, n_batches=8)
        want = golden.point("gia", "multi_res_densegrid", 16,
                            golden.grid.pixel_counts[0],
                            clock_ghz=1.695, grid_sram_kb=512, n_batches=8)
        assert got.accelerated_ms == want.accelerated_ms
        assert got.baseline_ms == want.baseline_ms

    def test_no_bound_violations_on_the_real_surface(self, explorer):
        # the queries above ran; the real emulator is monotone, so the
        # fallback path must never have fired
        assert explorer.stats.bound_violations == 0

    def test_large_grid_explores_at_most_ten_percent(self):
        # the headline contract on a >=1M-point grid: one Pareto front
        # and one cheapest query touch <=10% of the hypercube
        grid = SweepGrid(
            apps=("nerf", "gia"),
            scale_factors=tuple(2 ** i for i in range(8)),
            clocks_ghz=tuple(0.5 + 0.05 * i for i in range(32)),
            grid_sram_kb=tuple(2 ** (4 + i) for i in range(16)),
            n_engines=tuple(2 ** i for i in range(8)),
            n_batches=tuple(2 ** i for i in range(16)),
        )
        assert grid.size >= 1_000_000
        explorer = AdaptiveExplorer(grid)
        front = explorer.pareto(grid.schemes[0],
                                n_pixels=grid.pixel_counts[0])
        hit = explorer.cheapest("nerf", 60.0,
                                n_pixels=grid.pixel_counts[0],
                                scheme=grid.schemes[0])
        assert front and hit is not None
        stats = explorer.stats
        assert stats.points_evaluated <= 0.10 * stats.points_total
        assert stats.bound_violations == 0


# ---------------------------------------------------------------------------
# the Session facade: explore= modes
# ---------------------------------------------------------------------------


class TestSessionExploreModes:
    def test_explicit_adaptive_matches_exhaustive(self):
        session = Session.local(engine="vectorized")
        exhaustive = session.sweep(GOLDEN_GRID, explore="exhaustive")
        adaptive = session.sweep(GOLDEN_GRID, explore="adaptive")
        assert exhaustive.explore == "exhaustive"
        assert adaptive.explore == "adaptive"
        assert adaptive.explore_stats is not None
        assert exhaustive.explore_stats is None
        for q in all_pareto_queries(adaptive.grid):
            assert points_dicts(
                adaptive.pareto(scheme=q["scheme"], n_pixels=q["n_pixels"],
                                app=q["app"])
            ) == points_dicts(
                exhaustive.pareto(scheme=q["scheme"], n_pixels=q["n_pixels"],
                                  app=q["app"])
            )

    def test_infeasible_error_identical_across_explore_modes(self):
        session = Session.local(engine="vectorized")
        payloads = []
        for mode in ("exhaustive", "adaptive"):
            sweep = session.sweep(GOLDEN_GRID, explore=mode)
            with pytest.raises(InfeasibleQueryError) as excinfo:
                sweep.cheapest(app="gia", fps=10.0**9,
                               scheme="multi_res_hashgrid")
            exc = excinfo.value
            payloads.append((str(exc), exc.app, exc.fps, exc.n_pixels,
                             exc.scheme, exc.best_fps))
        assert payloads[0] == payloads[1]

    def test_auto_picks_by_grid_size(self):
        session = Session.local(engine="vectorized")
        small = session.sweep(GOLDEN_GRID)  # default explore="auto"
        assert small.explore == "exhaustive"
        big_grid = SweepGrid(
            scale_factors=tuple(2 ** i for i in range(8)),
            clocks_ghz=tuple(0.5 + 0.05 * i for i in range(8)),
            grid_sram_kb=tuple(2 ** (4 + i) for i in range(8)),
            n_engines=tuple(2 ** i for i in range(8)),
            n_batches=tuple(2 ** i for i in range(8)),
        )
        assert big_grid.size >= ADAPTIVE_MIN_POINTS
        big = session.sweep(big_grid)  # lazy: nothing evaluates here
        assert big.explore == "adaptive"
        assert big.explore_stats["points_evaluated"] == 0

    def test_invalid_mode_and_remote_adaptive_are_rejected(self):
        session = Session.local(engine="vectorized")
        with pytest.raises(ValueError, match="explore must be one of"):
            session.sweep(GOLDEN_GRID, explore="greedy")
        remote = Session.remote(port=1)  # never connects: fails before IO
        with pytest.raises(ValueError, match="not available on the 'remote'"):
            remote.sweep(GOLDEN_GRID, explore="adaptive")

    def test_result_property_forces_dense_evaluation(self):
        session = Session.local(engine="vectorized")
        adaptive = session.sweep(GOLDEN_GRID, explore="adaptive")
        exhaustive = session.sweep(GOLDEN_GRID, explore="exhaustive")
        np.testing.assert_array_equal(
            adaptive.result.accelerated_ms, exhaustive.result.accelerated_ms
        )
        assert adaptive.records(limit=5) == exhaustive.records(limit=5)


# ---------------------------------------------------------------------------
# never evaluate a block twice
# ---------------------------------------------------------------------------


class TestBlockDedup:
    def test_repeated_queries_evaluate_nothing_new(self):
        session = Session.local(engine="vectorized")
        sweep = session.sweep(GOLDEN_GRID, explore="adaptive")
        first = [
            points_dicts(sweep.pareto(scheme=q["scheme"],
                                      n_pixels=q["n_pixels"], app=q["app"]))
            for q in all_pareto_queries(sweep.grid)
        ]
        evaluated = sweep.explore_stats["points_evaluated"]
        blocks = sweep.explore_stats["blocks_evaluated"]
        second = [
            points_dicts(sweep.pareto(scheme=q["scheme"],
                                      n_pixels=q["n_pixels"], app=q["app"]))
            for q in all_pareto_queries(sweep.grid)
        ]
        assert second == first
        assert sweep.explore_stats["points_evaluated"] == evaluated
        assert sweep.explore_stats["blocks_evaluated"] == blocks

    def test_resweep_of_same_space_shares_the_explorer(self):
        session = Session.local(engine="vectorized")
        sweep = session.sweep(GOLDEN_GRID, explore="adaptive")
        sweep.pareto(scheme="multi_res_hashgrid")
        evaluated = sweep.explore_stats["points_evaluated"]
        respelled = SweepGrid(
            apps=tuple(reversed(GOLDEN_GRID.apps)),
            schemes=tuple(reversed(GOLDEN_GRID.schemes)),
            scale_factors=(64, 8, 32, 16),
            clocks_ghz=(1.695, 0.8),
            grid_sram_kb=GOLDEN_GRID.grid_sram_kb,
            n_batches=GOLDEN_GRID.n_batches,
        )
        again = session.sweep(respelled, explore="adaptive")
        again.pareto(scheme="multi_res_hashgrid")
        assert again.explore_stats["points_evaluated"] == evaluated

    def test_fresh_explorer_over_warm_store_evaluates_nothing(self, tmp_path):
        store_dir = str(tmp_path / "results")
        warm = Session(store=store_dir)
        sweep = warm.sweep(GOLDEN_GRID, explore="adaptive")
        front = points_dicts(sweep.pareto(scheme="multi_res_hashgrid"))
        hit = sweep.cheapest(app="nerf", fps=60.0,
                             scheme="multi_res_hashgrid").to_dict()
        assert sweep.explore_stats["blocks_evaluated"] > 0

        # a new session (fresh explorer, same directory) must answer
        # identically from persisted blocks alone
        cold = Session(store=store_dir)
        sweep2 = cold.sweep(GOLDEN_GRID, explore="adaptive")
        assert points_dicts(
            sweep2.pareto(scheme="multi_res_hashgrid")
        ) == front
        assert sweep2.cheapest(app="nerf", fps=60.0,
                               scheme="multi_res_hashgrid").to_dict() == hit
        stats = sweep2.explore_stats
        assert stats["blocks_evaluated"] == 0
        assert stats["blocks_cached"] == stats["blocks_total"]

    def test_store_runner_wiring(self, tmp_path):
        backend = Session(store=str(tmp_path / "r")).backend
        runner = backend.block_runner()
        assert isinstance(runner, StoreBlockRunner)
        assert isinstance(runner.inner, LocalBlockRunner)


# ---------------------------------------------------------------------------
# bound-violation fallback on a hostile (non-monotone) surface
# ---------------------------------------------------------------------------

#: per-app scaling of the fake surface (distinct per app so per-app and
#: mean-mode Pareto queries genuinely differ)
_FAKE_APP_FACTOR = {"nerf": 1.0, "nsdf": 1.3, "gia": 1.7, "nvr": 2.1}


def _fake_arrays(app, scales, pixels, clocks, srams, engines, batches):
    """A deterministic, non-monotone timing surface.

    Non-monotone in every architecture axis (the sine), monotone
    nonincreasing along batches (the engine's batch-axis dominance rule
    is load-bearing for correctness and is kept intact; the *benefit*
    monotonicity is what this surface violates).  Computed elementwise
    from axis values, so block-wise and dense evaluations produce
    bit-identical floats.
    """
    kk, pp, cc, gg, ee, bb = np.meshgrid(
        np.asarray(scales, dtype=float), np.asarray(pixels, dtype=float),
        np.asarray(clocks, dtype=float), np.asarray(srams, dtype=float),
        np.asarray(engines, dtype=float), np.asarray(batches, dtype=float),
        indexing="ij",
    )
    phase = (0.7 * np.log2(kk) + 2.3 * cc + 0.9 * np.log2(gg)
             + 1.9 * np.log2(ee))
    accelerated = (
        (5.0 + 3.0 * np.sin(phase)) / (1.0 + np.log2(bb))
        * _FAKE_APP_FACTOR[app]
    )
    baseline = np.full_like(accelerated, 120.0)
    return baseline, accelerated


class FakeRunner:
    """Block runner serving the fake surface (never touches the emulator)."""

    name = "fake"

    def __init__(self):
        self.calls = 0

    def evaluate(self, tasks):
        out = []
        for task in tasks:
            self.calls += 1
            app = task[0]
            baseline, accelerated = _fake_arrays(app, *task[2:])
            block = {
                "baseline_ms": baseline,
                "accelerated_ms": accelerated,
                "encoding_engine_ms": np.zeros_like(accelerated),
                "mlp_engine_ms": np.zeros_like(accelerated),
                "dma_ms": np.zeros_like(accelerated),
                "fused_rest_ms": np.zeros_like(accelerated),
                "amdahl_bound": 1.0,
            }
            out.append((block, False))
        return out


FAKE_GRID = SweepGrid(
    apps=("nerf", "gia"),
    scale_factors=(8, 16, 32, 64),
    clocks_ghz=(0.6, 0.9, 1.2, 1.5),
    grid_sram_kb=(256, 512, 1024),
    n_engines=(8, 16, 32),
    n_batches=(4, 8, 16),
)


def _fake_dense_result(grid):
    """The exhaustive golden answers on the fake surface."""
    resolved = grid.resolve()
    shape = resolved.shape
    arrays = {
        name: np.zeros(shape)
        for name in ("encoding_engine_ms", "mlp_engine_ms", "dma_ms",
                     "fused_rest_ms")
    }
    arrays["baseline_ms"] = np.empty(shape)
    arrays["accelerated_ms"] = np.empty(shape)
    arrays["amdahl_bound"] = np.ones(shape[:2])
    for i, app in enumerate(resolved.apps):
        for j, _scheme in enumerate(resolved.schemes):
            baseline, accelerated = _fake_arrays(
                app, resolved.scale_factors, resolved.pixel_counts,
                resolved.clocks_ghz, resolved.grid_sram_kb,
                resolved.n_engines, resolved.n_batches,
            )
            arrays["baseline_ms"][i, j] = baseline
            arrays["accelerated_ms"][i, j] = accelerated
    return finalize_sweep_result(resolved, "fake", None, arrays)


class TestBoundViolationFallback:
    @pytest.fixture(scope="class")
    def dense(self):
        return _fake_dense_result(FAKE_GRID)

    @pytest.fixture(scope="class")
    def explorer(self):
        return AdaptiveExplorer(FAKE_GRID, runner=FakeRunner())

    def test_pareto_detects_violations_and_stays_exact(self, dense, explorer):
        for q in all_pareto_queries(dense.grid):
            got = explorer.pareto(q["scheme"], n_pixels=q["n_pixels"],
                                  app=q["app"])
            want = dense.pareto_front(q["scheme"], n_pixels=q["n_pixels"],
                                      app=q["app"])
            assert points_dicts(got) == points_dicts(want), q
        # the sine surface breaks monotone benefit everywhere: the checks
        # must have tripped and flipped the queries into dense fallback
        assert explorer.stats.bound_violations > 0

    def test_cheapest_exact_on_the_hostile_surface(self, dense, explorer):
        for q in all_cheapest_queries(dense.grid):
            want = dense.cheapest_point_meeting_fps(
                q["app"], q["fps"], n_pixels=q["n_pixels"], scheme=q["scheme"]
            )
            if want is None:
                with pytest.raises(InfeasibleQueryError):
                    explorer.cheapest(q["app"], q["fps"],
                                      n_pixels=q["n_pixels"],
                                      scheme=q["scheme"])
            else:
                got = explorer.cheapest(q["app"], q["fps"],
                                        n_pixels=q["n_pixels"],
                                        scheme=q["scheme"])
                assert got.to_dict() == want.to_dict(), q


# ---------------------------------------------------------------------------
# the sweep service in adaptive mode
# ---------------------------------------------------------------------------


class TestServiceAdaptive:
    def test_adaptive_service_matches_exhaustive(self):
        from repro.service import SweepService

        async def run():
            adaptive = SweepService(engine="vectorized", explore="adaptive")
            exhaustive = SweepService(engine="vectorized")
            grid = GOLDEN_GRID.to_dict()
            front_a = await adaptive.pareto_front(
                grid, scheme="multi_res_hashgrid"
            )
            front_e = await exhaustive.pareto_front(
                grid, scheme="multi_res_hashgrid"
            )
            hit_a = await adaptive.cheapest_point_meeting_fps(
                grid, "nerf", 60.0, scheme="multi_res_hashgrid"
            )
            hit_e = await exhaustive.cheapest_point_meeting_fps(
                grid, "nerf", 60.0, scheme="multi_res_hashgrid"
            )
            none_a = await adaptive.cheapest_point_meeting_fps(
                grid, "nerf", 10.0**9, scheme="multi_res_hashgrid"
            )
            return adaptive, front_a, front_e, hit_a, hit_e, none_a

        adaptive, front_a, front_e, hit_a, hit_e, none_a = asyncio.run(run())
        assert points_dicts(front_a) == points_dicts(front_e)
        assert hit_a.to_dict() == hit_e.to_dict()
        # the HTTP layer's result:null contract holds in both modes
        assert none_a is None
        stats = adaptive.stats()["explore"]
        assert stats["mode"] == "adaptive"
        assert stats["grids"] == 1
        assert 0 < stats["points_evaluated"] <= stats["points_total"]
        # adaptive mode never ran a dense sweep
        assert adaptive.evaluations == 0

    def test_exhaustive_service_reports_mode(self):
        from repro.service import SweepService

        service = SweepService(engine="vectorized")
        assert service.stats()["explore"] == {"mode": "exhaustive"}

    def test_adaptive_rejects_injected_sweep_fn(self):
        from repro.service import SweepService

        with pytest.raises(ValueError, match="adaptive"):
            SweepService(explore="adaptive", sweep_fn=lambda *a, **k: None)
        with pytest.raises(ValueError, match="explore must be"):
            SweepService(explore="sometimes")
