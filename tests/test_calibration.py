"""Tests for the calibration datasets: internal consistency with the paper."""

import pytest

from repro.apps.params import APP_NAMES, ENCODING_SCHEMES
from repro.calibration import fitted, paper


class TestPaperDataset:
    def test_baseline_times_present_for_all_apps(self):
        assert set(paper.BASELINE_FHD_MS) == set(APP_NAMES)

    def test_table2_complete(self):
        """4 apps x 3 schemes x 2 kernels."""
        assert len(paper.TABLE2) == 24
        for app in APP_NAMES:
            for scheme in ENCODING_SCHEMES:
                for kernel in ("encoding", "mlp"):
                    assert (app, scheme, kernel) in paper.TABLE2

    def test_gap_consistent_with_baseline_times(self):
        """55.50x = 231 ms x (4K/FHD) / 16.67 ms, and likewise for others."""
        fhd = paper.RESOLUTIONS["fhd"]
        fourk = paper.RESOLUTIONS["4k"]
        budget = 1000.0 / 60
        for app, gap in paper.PERFORMANCE_GAP_4K60.items():
            derived = paper.BASELINE_FHD_MS[app] * (fourk / fhd) / budget
            assert derived == pytest.approx(gap, rel=0.01)

    def test_fig5_totals_consistent(self):
        for scheme, f in paper.FIG5_AVERAGE_FRACTIONS.items():
            # components add up to the quoted total within the paper's own
            # rounding (the LRDG total is quoted as 59.96 vs 59.52 summed)
            assert f["encoding"] + f["mlp"] == pytest.approx(f["total"], abs=0.5)

    def test_fig12_speedups_increase_with_scale(self):
        for scheme, per_scale in paper.FIG12_AVERAGE_SPEEDUPS.items():
            values = [per_scale[s] for s in (8, 16, 32, 64)]
            assert values == sorted(values)

    def test_fig15_overheads_linear_in_scale(self):
        """Area/power overheads double when the NFP count doubles."""
        for table in (paper.FIG15_AREA_OVERHEAD_PCT, paper.FIG15_POWER_OVERHEAD_PCT):
            assert table[16] == pytest.approx(2 * table[8], rel=0.01)
            assert table[64] == pytest.approx(8 * table[8], rel=0.01)

    def test_table3_access_time_consistent_with_bandwidth(self):
        """access_time = total_bytes_per_frame / GPU bandwidth at 60 FPS."""
        for app, (_, _, total_bw, access) in paper.TABLE3.items():
            bytes_per_frame = total_bw * 1e9 / 60.0
            derived_ms = bytes_per_frame / (paper.RTX3090_MEM_BW_GBPS * 1e9) * 1e3
            assert derived_ms == pytest.approx(access, rel=0.01)

    def test_resolutions(self):
        assert paper.RESOLUTIONS["fhd"] == 1920 * 1080
        assert paper.RESOLUTIONS["8k"] == 7680 * 4320


class TestFittedConstants:
    def test_fraction_averages_reproduce_fig5(self):
        fitted.check_fraction_averages()

    def test_fractions_sum_to_one(self):
        for fractions in fitted.KERNEL_FRACTIONS.values():
            assert sum(fractions) == pytest.approx(1.0)

    def test_all_configs_covered(self):
        for app in APP_NAMES:
            for scheme in ENCODING_SCHEMES:
                assert (app, scheme) in fitted.KERNEL_FRACTIONS

    def test_nerf_rest_fraction_supports_58x(self):
        """9.94 / f_rest must exceed the reported 58.36x max speedup."""
        f_rest = fitted.KERNEL_FRACTIONS[("nerf", "multi_res_hashgrid")][2]
        assert paper.REST_FUSION_SPEEDUP / f_rest >= paper.MAX_END_TO_END_SPEEDUP

    def test_overheads_positive(self):
        for value in fitted.BATCH_OVERHEAD_MS_FHD_AT64.values():
            assert value > 0
        assert 0 < fitted.BATCH_OVERHEAD_SCALE_EXPONENT <= 1.0

    def test_samples_per_pixel_ordering(self):
        """NeRF marches the most samples; GIA queries exactly one."""
        spp = fitted.SAMPLES_PER_PIXEL
        assert spp["gia"] == 1.0
        assert spp["nerf"] > spp["nsdf"] > spp["nvr"] >= 1.0 or (
            spp["nerf"] > spp["nsdf"] and spp["nerf"] > spp["nvr"]
        )
