"""Tests for the multi-resolution grid encodings (hash/dense/tiled)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encodings import (
    DenseGridEncoding,
    HashGridEncoding,
    TiledGridEncoding,
    grid_resolution,
    hash_coords,
)
from repro.nn import L2Loss


def small_hashgrid(dim=3, **kwargs):
    defaults = dict(
        n_levels=8,
        n_features=2,
        log2_table_size=12,
        base_resolution=4,
        growth_factor=1.5,
        seed=0,
    )
    defaults.update(kwargs)
    return HashGridEncoding(dim, **defaults)


class TestHashFunction:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2**20), st.integers(0, 2**20), st.integers(0, 2**20)
            ),
            min_size=1,
            max_size=32,
        ),
        st.integers(1, 24),
    )
    @settings(max_examples=50)
    def test_hash_in_range_and_deterministic(self, coords, log2_t):
        coords = np.array(coords, dtype=np.int64)
        t = 1 << log2_t
        h1 = hash_coords(coords, t)
        h2 = hash_coords(coords, t)
        np.testing.assert_array_equal(h1, h2)
        assert np.all((h1 >= 0) & (h1 < t))

    def test_hash_first_prime_is_one(self):
        """Eq. 1 uses pi_1 = 1, so 1D hashing is x mod T."""
        coords = np.arange(100).reshape(-1, 1)
        np.testing.assert_array_equal(hash_coords(coords, 32), np.arange(100) % 32)

    def test_hash_spreads_values(self):
        """A dense block of coordinates should cover many buckets."""
        g = np.stack(
            np.meshgrid(np.arange(16), np.arange(16), np.arange(16), indexing="ij"),
            axis=-1,
        ).reshape(-1, 3)
        h = hash_coords(g, 1 << 12)
        # A perfectly uniform hash fills ~(1 - 1/e) = 63% of 4096 buckets
        # with 4096 keys; require at least half to catch degenerate hashes.
        assert len(np.unique(h)) > 2048

    def test_hash_rejects_too_many_dims(self):
        with pytest.raises(ValueError):
            hash_coords(np.zeros((4, 5), dtype=np.int64), 16)

    def test_hash_rejects_bad_table(self):
        with pytest.raises(ValueError):
            hash_coords(np.zeros((4, 3), dtype=np.int64), 0)


class TestGridGeometry:
    def test_grid_resolution_growth(self):
        assert grid_resolution(16, 1.5, 0) == 16
        assert grid_resolution(16, 1.5, 1) == 24
        assert grid_resolution(16, 1.5, 2) == 36

    def test_grid_resolution_validation(self):
        with pytest.raises(ValueError):
            grid_resolution(0, 1.5, 1)
        with pytest.raises(ValueError):
            grid_resolution(16, 0.9, 1)
        with pytest.raises(ValueError):
            grid_resolution(16, 1.5, -1)

    def test_hashgrid_coarse_levels_are_dense(self):
        enc = small_hashgrid()
        assert not enc.level_uses_hash(0)  # 5^3 = 125 << 4096
        finest = enc.n_levels - 1
        assert enc.level_uses_hash(finest)
        assert enc.level_table_entries(finest) == enc.table_size

    def test_dense_entries(self):
        enc = DenseGridEncoding(
            3, n_levels=2, n_features=2, base_resolution=4, growth_factor=2.0, seed=0
        )
        assert enc.level_table_entries(0) == 5**3
        assert enc.level_table_entries(1) == 9**3

    def test_tiled_entries(self):
        enc = TiledGridEncoding(
            3, n_levels=2, n_features=4, base_resolution=8, growth_factor=1.0, seed=0
        )
        assert enc.level_table_entries(0) == 8**3
        assert enc.level_table_entries(1) == 8**3

    def test_memory_guard(self):
        with pytest.raises(MemoryError):
            DenseGridEncoding(
                3, n_levels=1, n_features=2, base_resolution=4096, seed=0
            )

    def test_lookups_per_input(self):
        enc = small_hashgrid()
        assert enc.lookups_per_input() == 8 * 8
        enc2d = small_hashgrid(dim=2)
        assert enc2d.lookups_per_input() == 4 * 8

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            small_hashgrid(dim=4)
        with pytest.raises(ValueError):
            small_hashgrid(n_levels=0)
        with pytest.raises(ValueError):
            small_hashgrid(n_features=0)


@pytest.mark.parametrize(
    "enc_factory",
    [
        lambda: small_hashgrid(),
        lambda: DenseGridEncoding(
            3, n_levels=4, n_features=2, base_resolution=4, growth_factor=1.405, seed=0
        ),
        lambda: TiledGridEncoding(
            3, n_levels=2, n_features=8, base_resolution=16, growth_factor=1.0, seed=0
        ),
    ],
    ids=["hash", "dense", "tiled"],
)
class TestGridForwardBackward:
    def test_output_shape(self, enc_factory, unit_points_3d):
        enc = enc_factory()
        out = enc.forward(unit_points_3d)
        assert out.shape == (unit_points_3d.shape[0], enc.output_dim)
        assert out.dtype == np.float32

    def test_forward_deterministic(self, enc_factory, unit_points_3d):
        enc = enc_factory()
        np.testing.assert_array_equal(
            enc.forward(unit_points_3d), enc.forward(unit_points_3d)
        )

    def test_interpolation_at_vertices_is_exact(self, enc_factory):
        """Querying exactly at a grid vertex returns that vertex's feature."""
        enc = enc_factory()
        level = 0
        res = enc.level_resolution(level)
        # vertex (1, 1, 1) of level 0 in normalized coordinates
        x = np.array([[1.0 / res, 1.0 / res, 1.0 / res]], dtype=np.float32)
        out = enc.forward(x)[0, : enc.n_features]
        idx = enc._index_coords(np.array([[[1, 1, 1]]]), level)[0, 0]
        np.testing.assert_allclose(out, enc.tables[level][idx], rtol=1e-4, atol=1e-6)

    def test_continuity_across_cell_boundary(self, enc_factory):
        """Features are continuous: tiny steps produce tiny output changes."""
        enc = enc_factory()
        x = np.array([[0.5, 0.5, 0.5]], dtype=np.float32)
        eps = 1e-5
        a = enc.forward(x)
        b = enc.forward(x + eps)
        assert np.max(np.abs(a - b)) < 1e-2

    def test_out_of_range_inputs_are_clamped(self, enc_factory):
        enc = enc_factory()
        x = np.array([[-0.5, 1.5, 0.5]], dtype=np.float32)
        clamped = np.array([[0.0, 1.0, 0.5]], dtype=np.float32)
        np.testing.assert_allclose(enc.forward(x), enc.forward(clamped))

    def test_backward_requires_cache(self, enc_factory, unit_points_3d):
        enc = enc_factory()
        enc.forward(unit_points_3d)
        with pytest.raises(RuntimeError):
            enc.backward(np.zeros((unit_points_3d.shape[0], enc.output_dim)))

    def test_backward_gradient_matches_finite_differences(
        self, enc_factory, unit_points_3d
    ):
        enc = enc_factory()
        x = unit_points_3d[:8]
        target = np.zeros((8, enc.output_dim), dtype=np.float32)
        loss = L2Loss()
        out = enc.forward(x, cache=True)
        _, dy = loss.value_and_grad(out, target)
        grads = enc.backward(dy).param_grads
        eps = 1e-3
        level = 0
        table = enc.tables[level]
        # probe the highest-gradient entry, which is certainly touched
        flat = np.abs(grads[level]).ravel()
        k = int(np.argmax(flat))
        i, j = divmod(k, table.shape[1])
        old = table[i, j]
        table[i, j] = old + eps
        up = loss(enc.forward(x), target)
        table[i, j] = old - eps
        down = loss(enc.forward(x), target)
        table[i, j] = old
        numeric = (up - down) / (2 * eps)
        assert grads[level][i, j] == pytest.approx(numeric, rel=5e-2, abs=1e-7)

    def test_training_reduces_loss(self, enc_factory, rng):
        """The feature tables alone can fit a smooth target field."""
        from repro.nn import Adam

        enc = enc_factory()
        opt = Adam(learning_rate=5e-2)
        x = rng.uniform(0, 1, size=(512, 3)).astype(np.float32)
        target = np.repeat(
            np.sin(4 * x[:, :1]) * np.cos(4 * x[:, 1:2]),
            enc.output_dim,
            axis=1,
        ).astype(np.float32)
        loss = L2Loss()
        first = None
        for _ in range(60):
            out = enc.forward(x, cache=True)
            value, dy = loss.value_and_grad(out, target)
            if first is None:
                first = value
            opt.step(enc.parameters(), enc.backward(dy).param_grads)
        assert value < first * 0.3


class TestTiledWraparound:
    def test_tiling_repeats_space(self):
        """With growth 1, positions one period apart hit the same entries."""
        enc = TiledGridEncoding(
            2, n_levels=1, n_features=2, base_resolution=4, growth_factor=1.0, seed=0
        )
        coords = np.array([[[0, 0]], [[4, 4]]])
        idx = enc._index_coords(coords, 0)
        assert idx[0, 0] == idx[1, 0]


class TestInterpolationWeights:
    @given(
        st.floats(0.01, 0.99),
        st.floats(0.01, 0.99),
        st.floats(0.01, 0.99),
    )
    @settings(max_examples=25)
    def test_partition_of_unity(self, x, y, z):
        """Interpolating a table of ones returns exactly one at any point."""
        enc = small_hashgrid()
        for t in enc.tables:
            t[...] = 1.0
        out = enc.forward(np.array([[x, y, z]], dtype=np.float32))
        np.testing.assert_allclose(out, 1.0, rtol=1e-5)
