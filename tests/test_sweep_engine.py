"""Equivalence + property harness for the batched DSE engine.

The batched NumPy paths must be numerically identical to the scalar
emulator over the whole (app, scheme, scale, pixels) space; hypothesis
draws the sample.  Also covered here: the hardware ``shift_modulo``
against true ``%``, Pareto-front invariants, the memoization layer, the
process-pool engine, and the new power-of-two configuration validation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sensitivity import perturbed_overheads
from repro.apps.params import APP_NAMES, ENCODING_SCHEMES
from repro.core.axes import AXES
from repro.core.cache import cache_stats, clear_model_caches
from repro.core.config import NFPConfig, NGPCConfig, SCALE_FACTORS
from repro.core.dse import (
    SweepGrid,
    cheapest_meeting_fps,
    pareto_front,
    smallest_scale_for_fps,
    sweep_grid,
)
from repro.core.emulator import emulate, emulate_batch, emulate_uncached
from repro.core.encoding_engine import shift_modulo
from repro.core.energy import energy_per_frame, energy_per_frame_batch
from repro.workloads.sweep import full_sweep, full_sweep_batched

RTOL = 1e-9

apps = st.sampled_from(APP_NAMES)
schemes = st.sampled_from(ENCODING_SCHEMES)
scales = st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128])
pixels = st.integers(min_value=1, max_value=3840 * 2160 * 4)

_FIELDS = (
    "baseline_ms",
    "accelerated_ms",
    "encoding_engine_ms",
    "mlp_engine_ms",
    "dma_ms",
    "fused_rest_ms",
)


class TestBatchedEqualsScalar:
    @given(apps, schemes, scales, pixels)
    @settings(max_examples=60, deadline=None)
    def test_single_point(self, app, scheme, scale, n_pixels):
        scalar = emulate_uncached(app, scheme, scale, n_pixels)
        block = emulate_batch(app, scheme, (scale,), (n_pixels,))
        for name in _FIELDS:
            assert float(block[name][0, 0]) == pytest.approx(
                getattr(scalar, name), rel=RTOL
            ), name
        assert float(block["speedup"][0, 0]) == pytest.approx(
            scalar.speedup, rel=RTOL
        )
        assert float(block["amdahl_bound"]) == pytest.approx(
            scalar.amdahl_bound, rel=RTOL
        )

    @given(
        st.lists(scales, min_size=1, max_size=4, unique=True),
        st.lists(pixels, min_size=1, max_size=4, unique=True),
    )
    @settings(max_examples=20, deadline=None)
    def test_plane(self, scale_list, pixel_list):
        """A whole (S, P) plane agrees with the per-point scalar loop."""
        block = emulate_batch(
            "nerf", "multi_res_hashgrid", scale_list, pixel_list
        )
        for k, scale in enumerate(scale_list):
            for l, n_pixels in enumerate(pixel_list):
                scalar = emulate_uncached(
                    "nerf", "multi_res_hashgrid", scale, n_pixels
                )
                assert float(block["accelerated_ms"][k, l]) == pytest.approx(
                    scalar.accelerated_ms, rel=RTOL
                )

    def test_engines_agree_bit_for_bit(self):
        grid = SweepGrid(
            apps=APP_NAMES,
            schemes=ENCODING_SCHEMES,
            scale_factors=SCALE_FACTORS,
            pixel_counts=(518_400, 2_073_600),
        )
        vec = sweep_grid(grid, engine="vectorized", use_cache=False)
        scal = sweep_grid(grid, engine="scalar", use_cache=False)
        for name in _FIELDS + ("amdahl_bound",):
            np.testing.assert_allclose(
                getattr(vec, name), getattr(scal, name), rtol=RTOL, atol=0.0
            )

    def test_engines_honor_ngpc_override(self):
        """A non-default NGPCConfig reaches every engine, not just vectorized."""
        grid = SweepGrid(
            apps=("nerf",),
            schemes=("multi_res_hashgrid",),
            scale_factors=(8,),
            pixel_counts=(2_073_600,),
        )
        override = NGPCConfig(n_pipeline_batches=4)
        vec = sweep_grid(grid, engine="vectorized", ngpc=override, use_cache=False)
        scal = sweep_grid(grid, engine="scalar", ngpc=override, use_cache=False)
        default = sweep_grid(grid, engine="scalar", use_cache=False)
        np.testing.assert_allclose(
            vec.accelerated_ms, scal.accelerated_ms, rtol=RTOL, atol=0.0
        )
        assert float(scal.accelerated_ms.flat[0]) != pytest.approx(
            float(default.accelerated_ms.flat[0]), rel=1e-3
        )

    def test_cached_result_arrays_are_frozen(self):
        result = sweep_grid()
        with pytest.raises(ValueError):
            result.accelerated_ms[0, 0, 0, 0] = 0.0

    def test_process_engine_agrees(self):
        grid = SweepGrid(
            apps=("gia", "nvr"),
            schemes=("multi_res_hashgrid",),
            scale_factors=(8, 64),
            pixel_counts=(2_073_600,),
        )
        vec = sweep_grid(grid, engine="vectorized", use_cache=False)
        proc = sweep_grid(grid, engine="process", max_workers=2, use_cache=False)
        for name in _FIELDS:
            np.testing.assert_allclose(
                getattr(vec, name), getattr(proc, name), rtol=RTOL, atol=0.0
            )

    def test_full_sweep_batched_matches_generator(self):
        batched = list(full_sweep_batched(schemes=["multi_res_hashgrid"]))
        scalar = list(full_sweep(schemes=["multi_res_hashgrid"]))
        assert len(batched) == len(scalar)
        for b, s in zip(batched, scalar):
            assert (b.app, b.scheme, b.scale_factor) == (
                s.app,
                s.scheme,
                s.scale_factor,
            )
            assert b.result.accelerated_ms == pytest.approx(
                s.result.accelerated_ms, rel=RTOL
            )

    @given(apps, scales, pixels)
    @settings(max_examples=20, deadline=None)
    def test_energy_batch_equals_scalar(self, app, scale, n_pixels):
        scalar = energy_per_frame(app, "multi_res_hashgrid", scale, n_pixels)
        block = energy_per_frame_batch(
            app, "multi_res_hashgrid", (scale,), (n_pixels,)
        )
        for name in (
            "baseline_mj",
            "accelerated_mj",
            "baseline_fps_per_watt",
            "accelerated_fps_per_watt",
        ):
            assert float(block[name][0, 0]) == pytest.approx(
                getattr(scalar, name), rel=RTOL
            ), name


clocks = st.floats(min_value=0.2, max_value=4.0, allow_nan=False)
srams = st.sampled_from([128, 256, 512, 1024, 2048, 4096])
engine_counts = st.sampled_from([1, 2, 4, 8, 16, 32])
batch_counts = st.integers(min_value=1, max_value=64)


class TestArchitectureAxes:
    """N-D batched == scalar over the architecture axes."""

    @given(apps, schemes, scales, pixels, clocks, srams, engine_counts, batch_counts)
    @settings(max_examples=60, deadline=None)
    def test_single_point(
        self, app, scheme, scale, n_pixels, clock, sram, n_eng, n_b
    ):
        from repro.core.emulator import Emulator

        nfp = NFPConfig(
            clock_ghz=clock,
            grid_sram_kb_per_engine=sram,
            n_encoding_engines=n_eng,
        )
        config = NGPCConfig(
            scale_factor=scale, nfp=nfp, n_pipeline_batches=n_b
        )
        scalar = Emulator(config).run(app, scheme, n_pixels)
        block = emulate_batch(
            app, scheme, (scale,), (n_pixels,),
            clocks_ghz=(clock,), grid_sram_kb=(sram,),
            n_engines=(n_eng,), n_batches=(n_b,),
        )
        assert block["accelerated_ms"].shape == (1, 1, 1, 1, 1, 1)
        for name in _FIELDS:
            assert float(block[name].flat[0]) == pytest.approx(
                getattr(scalar, name), rel=RTOL
            ), name
        assert float(block["speedup"].flat[0]) == pytest.approx(
            scalar.speedup, rel=RTOL
        )

    def test_hypercube_engines_agree_bit_for_bit(self):
        grid = SweepGrid(
            apps=("nerf", "gia"),
            schemes=("multi_res_hashgrid",),
            scale_factors=(8, 64),
            pixel_counts=(518_400, 2_073_600),
            clocks_ghz=(0.9, 1.695),
            grid_sram_kb=(256, 1024),
            n_engines=(8, 16),
            n_batches=(4, 16),
        )
        vec = sweep_grid(grid, engine="vectorized", use_cache=False)
        scal = sweep_grid(grid, engine="scalar", use_cache=False)
        proc = sweep_grid(grid, engine="process", max_workers=2, use_cache=False)
        assert vec.accelerated_ms.shape == grid.shape
        for name in _FIELDS + ("amdahl_bound",):
            np.testing.assert_array_equal(
                getattr(vec, name), getattr(scal, name), err_msg=name
            )
            np.testing.assert_array_equal(
                getattr(vec, name), getattr(proc, name), err_msg=name
            )

    def test_cost_arrays_span_architecture_axes(self):
        grid = SweepGrid(
            apps=("nvr",),
            scale_factors=(8, 32),
            clocks_ghz=(0.9, 1.695),
            grid_sram_kb=(512, 1024),
            n_engines=(8, 16),
        )
        result = sweep_grid(grid, use_cache=False)
        assert result.area_overhead_pct.shape == (2, 2, 2, 2)
        # SRAM halving shrinks area; clock does not change area but
        # does change power
        assert float(result.area_mm2_7nm[0, 0, 0, 0]) < float(
            result.area_mm2_7nm[0, 0, 1, 0]
        )
        assert float(result.area_mm2_7nm[0, 0, 0, 0]) == float(
            result.area_mm2_7nm[0, 1, 0, 0]
        )
        assert float(result.power_w_7nm[0, 0, 0, 0]) < float(
            result.power_w_7nm[0, 1, 0, 0]
        )

    def test_point_lookup_with_architecture_axes(self):
        grid = SweepGrid(
            apps=("nerf",),
            scale_factors=(8,),
            clocks_ghz=(0.9, 1.695),
            n_batches=(4, 16),
        )
        result = sweep_grid(grid, use_cache=False)
        from repro.core.emulator import Emulator

        config = NGPCConfig(
            scale_factor=8,
            nfp=NFPConfig(clock_ghz=0.9),
            n_pipeline_batches=4,
        )
        ref = Emulator(config).run("nerf", "multi_res_hashgrid", 2_073_600)
        got = result.point(
            "nerf", "multi_res_hashgrid", 8, 2_073_600,
            clock_ghz=0.9, n_batches=4,
        )
        assert got.accelerated_ms == pytest.approx(ref.accelerated_ms, rel=RTOL)
        # ambiguous axis without an explicit value
        with pytest.raises(KeyError):
            result.point("nerf", "multi_res_hashgrid", 8, 2_073_600)
        # off-grid axis value
        with pytest.raises(KeyError):
            result.point(
                "nerf", "multi_res_hashgrid", 8, 2_073_600,
                clock_ghz=1.0, n_batches=4,
            )

    def test_auto_engine_matches_vectorized(self):
        from repro.core.dse import _resolve_engine

        grid = SweepGrid(apps=("gia",), scale_factors=(8, 64))
        auto = sweep_grid(grid, engine="auto", use_cache=False)
        vec = sweep_grid(grid, engine="vectorized", use_cache=False)
        assert auto.engine in ("vectorized", "process")
        np.testing.assert_array_equal(auto.accelerated_ms, vec.accelerated_ms)
        # small grids always stay in-process
        assert _resolve_engine("auto", grid.resolve()) == "vectorized"

    def test_block_tasks_tile_the_grid_exactly(self):
        from repro.core.dse import shard_plan

        grid = SweepGrid(
            apps=("nerf", "gia"),
            schemes=("multi_res_hashgrid",),
            scale_factors=(8, 16, 32, 64),
            pixel_counts=(1000, 2000),
            clocks_ghz=(0.9, 1.2, 1.695),
            n_batches=(4, 16),
        ).resolve()
        for n_workers in (1, 2, 7):
            tasks = shard_plan(grid, 4 * n_workers)
            covered = np.zeros(grid.shape, dtype=int)
            for (i, j, windows), task in tasks:
                covered[(i, j) + tuple(slice(lo, hi) for lo, hi in windows)] += 1
                # the task's axis subsets match the placement windows
                for axis_values, (lo, hi) in zip(task[2:], windows):
                    assert len(axis_values) == hi - lo
            assert covered.min() == covered.max() == 1, n_workers

    def test_block_tasks_split_multiple_axes_for_many_workers(self):
        from repro.core.dse import shard_plan

        # one (app, scheme) pair: chunks must come from the config axes
        # alone, spilling past the longest axis when workers demand it
        grid = SweepGrid(
            apps=("nerf",),
            schemes=("multi_res_hashgrid",),
            scale_factors=(8, 16, 32, 64),
            pixel_counts=tuple(range(1000, 6000, 1000)),
            clocks_ghz=(0.9, 1.2, 1.695),
            n_batches=(4, 16),
        ).resolve()
        tasks = shard_plan(grid, 4 * 16)
        # 4*16 target blocks on a 120-point grid: more chunks than the
        # longest single axis (5) can provide
        assert len(tasks) > 5
        covered = np.zeros(grid.shape, dtype=int)
        for (i, j, windows), _ in tasks:
            covered[(i, j) + tuple(slice(lo, hi) for lo, hi in windows)] += 1
        assert covered.min() == covered.max() == 1

    def test_ambiguous_query_axes_raise(self):
        grid = SweepGrid(
            apps=("gia",),
            schemes=("multi_res_hashgrid", "low_res_densegrid"),
            scale_factors=(8,),
            pixel_counts=(518_400, 2_073_600),
        )
        result = sweep_grid(grid, use_cache=False)
        with pytest.raises(KeyError):
            result.pareto_front("multi_res_hashgrid")  # which resolution?
        with pytest.raises(KeyError):
            result.cheapest_meeting_fps("gia", 60.0, n_pixels=518_400)
        assert result.pareto_front("multi_res_hashgrid", 518_400)
        assert result.cheapest_meeting_fps(
            "gia", 60.0, n_pixels=518_400, scheme="multi_res_hashgrid"
        ) == 8

    def test_cheapest_point_carries_architecture_config(self):
        grid = SweepGrid(
            apps=("nerf",),
            scale_factors=(8, 16, 32, 64),
            pixel_counts=(3840 * 2160,),
            clocks_ghz=(0.9, 1.695),
            grid_sram_kb=(512, 1024),
        )
        result = sweep_grid(grid, use_cache=False)
        hit = result.cheapest_point_meeting_fps("nerf", 30.0)
        assert hit is not None
        axes = dict(hit.config_axes)
        assert set(axes) == {"clock_ghz", "grid_sram_kb"}
        # the named configuration really is feasible on the grid
        point = result.point(
            "nerf", "multi_res_hashgrid", hit.scale_factor, 3840 * 2160,
            clock_ghz=axes["clock_ghz"], grid_sram_kb=axes["grid_sram_kb"],
        )
        assert point.fps >= 30.0
        # and the scale-only view agrees with the full answer
        assert result.cheapest_meeting_fps("nerf", 30.0) == hit.scale_factor

    def test_no_overlap_conflicts_with_batches_axis(self):
        with pytest.raises(ValueError, match="overlap"):
            emulate_batch(
                "nerf", "multi_res_hashgrid", (8,),
                n_batches=(4, 16), overlap=False,
            )
        # without an explicit batches axis the N-D path honours overlap=False
        block = emulate_batch(
            "nerf", "multi_res_hashgrid", (8,),
            clocks_ghz=(1.695,), overlap=False,
        )
        assert block["accelerated_ms"].shape == (1, 1, 1, 1, 1, 1)

    def test_energy_batch_architecture_axes(self):
        from repro.core.energy import energy_per_frame, energy_per_frame_batch

        block = energy_per_frame_batch(
            "nvr", "multi_res_hashgrid", (8,), (2_073_600,),
            clocks_ghz=(0.9,), grid_sram_kb=(512,),
            n_engines=(8,), n_batches=(4,),
        )
        config = NGPCConfig(
            scale_factor=8,
            nfp=NFPConfig(
                clock_ghz=0.9, grid_sram_kb_per_engine=512, n_encoding_engines=8
            ),
            n_pipeline_batches=4,
        )
        scalar = energy_per_frame(
            "nvr", "multi_res_hashgrid", 8, 2_073_600, ngpc_config=config
        )
        for name in (
            "baseline_mj",
            "accelerated_mj",
            "baseline_fps_per_watt",
            "accelerated_fps_per_watt",
        ):
            assert float(block[name].flat[0]) == pytest.approx(
                getattr(scalar, name), rel=RTOL
            ), name


class TestShiftModulo:
    @given(
        st.lists(st.integers(0, 2**63 - 1), min_size=1, max_size=64),
        st.integers(0, 32),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_true_modulo_for_all_power_of_two_sizes(self, values, log2_t):
        table_size = 1 << log2_t
        arr = np.asarray(values, dtype=np.uint64)
        expected = arr % np.uint64(table_size) if table_size > 1 else arr * 0
        np.testing.assert_array_equal(shift_modulo(arr, table_size), expected)

    @given(st.integers(2, 2**24).filter(lambda v: v & (v - 1) != 0))
    @settings(max_examples=30, deadline=None)
    def test_rejects_non_power_of_two(self, table_size):
        with pytest.raises(ValueError):
            shift_modulo(np.asarray([1, 2, 3]), table_size)


class TestParetoFront:
    @given(
        st.lists(
            st.tuples(
                st.floats(0.1, 100.0, allow_nan=False),
                st.floats(0.1, 100.0, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_front_is_nondominated_and_sorted(self, points):
        costs = [c for c, _ in points]
        values = [v for _, v in points]
        front = pareto_front(costs, values)
        assert front, "the front is never empty"
        # sorted by ascending cost
        front_costs = [costs[i] for i in front]
        assert front_costs == sorted(front_costs)
        # no member dominated by any other point
        for i in front:
            for j in range(len(points)):
                if j == i:
                    continue
                dominates = (
                    costs[j] <= costs[i]
                    and values[j] >= values[i]
                    and (costs[j] < costs[i] or values[j] > values[i])
                )
                assert not dominates
        # every excluded point is strictly dominated by a front member,
        # or is an exact duplicate of one with a lower index (the
        # deterministic tie-break: one representative per (cost, value))
        excluded = set(range(len(points))) - set(front)
        for i in excluded:
            assert any(
                (
                    costs[j] <= costs[i]
                    and values[j] >= values[i]
                    and (costs[j] < costs[i] or values[j] > values[i])
                )
                or (costs[j] == costs[i] and values[j] == values[i] and j < i)
                for j in front
            )

    @given(
        st.lists(
            st.tuples(st.floats(0.1, 100.0, allow_nan=False),
                      st.floats(0.1, 100.0, allow_nan=False)),
            min_size=1,
            max_size=20,
        ),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_duplicate_ties_resolve_to_lowest_index(self, points, data):
        # inject exact (cost, value) duplicates at random positions: the
        # front must keep exactly one representative per distinct pair —
        # the lowest flat index — no matter where the copies sit
        n_copies = data.draw(st.integers(1, 8))
        for _ in range(n_copies):
            src = data.draw(st.integers(0, len(points) - 1))
            dst = data.draw(st.integers(0, len(points)))
            points.insert(dst, points[src])
        costs = [c for c, _ in points]
        values = [v for _, v in points]
        front = pareto_front(costs, values)
        pairs = [(costs[i], values[i]) for i in front]
        assert len(pairs) == len(set(pairs)), "one representative per pair"
        for i in front:
            first = min(
                j for j in range(len(points))
                if costs[j] == costs[i] and values[j] == values[i]
            )
            assert i == first, "ties keep the lowest flat index"

    def test_duplicates_keep_lowest_index(self):
        front = pareto_front([1.0, 1.0, 2.0], [5.0, 5.0, 4.0])
        assert front == [0]

    def test_validation(self):
        with pytest.raises(ValueError):
            pareto_front([[1.0]], [[2.0]])

    def test_sweep_result_front(self):
        result = sweep_grid()
        front = result.pareto_front("multi_res_hashgrid")
        areas = [p.area_overhead_pct for p in front]
        assert areas == sorted(areas)
        speeds = [p.average_speedup for p in front]
        assert speeds == sorted(speeds)  # on this grid: bigger buys more


class TestConstraintQueries:
    def test_cheapest_matches_legacy_smallest_scale(self):
        for app in APP_NAMES:
            for fps in (30.0, 60.0, 240.0):
                legacy = smallest_scale_for_fps(app, fps, 3840 * 2160)
                hit = cheapest_meeting_fps(app, fps, 3840 * 2160)
                assert (hit.scale_factor if hit else None) == legacy

    def test_unreachable_returns_none(self):
        assert cheapest_meeting_fps("nerf", 10_000.0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            cheapest_meeting_fps("nerf", 0.0)

    def test_grid_query_api(self):
        result = sweep_grid()
        scale = result.cheapest_meeting_fps(
            "gia", 60.0, scheme="multi_res_hashgrid"
        )
        assert scale == 8
        with pytest.raises(KeyError):
            result.point("gia", "multi_res_hashgrid", 8, 12345)


class TestMemoization:
    def test_cache_hit_returns_identical_object(self):
        cold = emulate("nerf", "multi_res_hashgrid", 8)
        warm = emulate("nerf", "multi_res_hashgrid", 8)
        assert warm is cold
        stats = cache_stats()["emulate"]
        assert stats["hits"] >= 1 and stats["misses"] >= 1

    def test_clear_breaks_identity_but_not_equality(self):
        cold = emulate("nerf", "multi_res_hashgrid", 8)
        clear_model_caches()
        fresh = emulate("nerf", "multi_res_hashgrid", 8)
        assert fresh is not cold
        assert fresh == cold  # frozen dataclass: same values

    def test_sweep_cache_returns_identical_result(self):
        first = sweep_grid()
        second = sweep_grid()
        assert second is first
        assert sweep_grid(use_cache=False) is not first

    def test_perturbed_calibration_bypasses_cache(self):
        """The fingerprint keeps sensitivity contexts cache-safe."""
        nominal = emulate("nerf", "multi_res_hashgrid", 8)
        with perturbed_overheads(2.0):
            perturbed = emulate("nerf", "multi_res_hashgrid", 8)
            assert perturbed.dma_ms == pytest.approx(2 * nominal.dma_ms, rel=RTOL)
        restored = emulate("nerf", "multi_res_hashgrid", 8)
        assert restored.accelerated_ms == pytest.approx(
            nominal.accelerated_ms, rel=RTOL
        )


class TestConfigValidation:
    @pytest.mark.parametrize("scale", (3, 6, 12, 24, 48, 96))
    def test_non_power_of_two_scale_rejected(self, scale):
        with pytest.raises(ValueError, match="power of two"):
            NGPCConfig(scale_factor=scale)

    @pytest.mark.parametrize("scale", (1, 2, 4, 8, 16, 32, 64, 128))
    def test_power_of_two_scale_accepted(self, scale):
        assert NGPCConfig(scale_factor=scale).n_nfps == scale

    def test_non_positive_scale_still_rejected(self):
        with pytest.raises(ValueError):
            NGPCConfig(scale_factor=0)

    @pytest.mark.parametrize("kb", (3, 100, 1000, 1536))
    def test_non_power_of_two_grid_sram_rejected(self, kb):
        with pytest.raises(ValueError, match="power of two"):
            NFPConfig(grid_sram_kb_per_engine=kb)

    def test_non_power_of_two_activation_sram_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            NFPConfig(activation_sram_kb=96)

    def test_batch_path_applies_same_validation(self):
        with pytest.raises(ValueError, match="power of two"):
            emulate_batch("nerf", "multi_res_hashgrid", (8, 12))
        with pytest.raises(ValueError, match="power of two"):
            SweepGrid(scale_factors=(24,))


class TestSweepGrid:
    def test_shape_size_points(self):
        grid = SweepGrid(
            apps=("nerf",),
            schemes=("multi_res_hashgrid", "low_res_densegrid"),
            scale_factors=(8, 64),
            pixel_counts=(1000, 2000, 3000),
        )
        assert grid.shape == (1, 2, 2, 3, 1, 1, 1, 1)
        assert grid.size == 12
        assert len(list(grid.points())) == 12

    def test_architecture_axes_shape_and_points(self):
        grid = SweepGrid(
            apps=("nerf",),
            schemes=("multi_res_hashgrid",),
            scale_factors=(8,),
            pixel_counts=(1000,),
            clocks_ghz=(0.9, 1.695),
            grid_sram_kb=(512, 1024),
            n_engines=(8, 16),
            n_batches=(4, 8, 16),
        )
        assert grid.shape == (1, 1, 1, 1, 2, 2, 2, 3)
        assert grid.size == 24
        points = list(grid.points())
        assert len(points) == 24
        # 8-tuple points in array order; last axis varies fastest
        assert points[0] == ("nerf", "multi_res_hashgrid", 8, 1000, 0.9, 512, 8, 4)
        assert points[1][-1] == 8

    def test_resolve_pins_architecture_axes(self):
        grid = SweepGrid()
        assert not grid.is_resolved
        resolved = grid.resolve()
        assert resolved.is_resolved
        assert resolved.clocks_ghz == (NFPConfig().clock_ghz,)
        assert resolved.grid_sram_kb == (NFPConfig().grid_sram_kb_per_engine,)
        assert resolved.n_engines == (NFPConfig().n_encoding_engines,)
        assert resolved.n_batches == (NGPCConfig().n_pipeline_batches,)
        # a non-default base config flows into the resolved axes
        custom = NGPCConfig(
            nfp=NFPConfig(clock_ghz=1.2), n_pipeline_batches=4
        )
        assert grid.resolve(custom).clocks_ghz == (1.2,)
        assert grid.resolve(custom).n_batches == (4,)

    def test_architecture_axis_validation(self):
        with pytest.raises(ValueError, match="power of two"):
            SweepGrid(grid_sram_kb=(768,))
        with pytest.raises(ValueError):
            SweepGrid(clocks_ghz=(0.0,))
        with pytest.raises(ValueError):
            SweepGrid(n_engines=(0,))
        with pytest.raises(ValueError):
            SweepGrid(n_batches=(0,))
        with pytest.raises(ValueError):
            SweepGrid(clocks_ghz=())

    def test_rejects_unknown_axes(self):
        with pytest.raises(ValueError):
            SweepGrid(apps=("dlss",))
        with pytest.raises(ValueError):
            SweepGrid(schemes=("octree",))
        with pytest.raises(ValueError):
            SweepGrid(pixel_counts=(0,))
        with pytest.raises(ValueError):
            SweepGrid(apps=())

    def test_point_reconstruction_matches_scalar(self):
        result = sweep_grid()
        for app in APP_NAMES:
            rebuilt = result.point(app, "multi_res_hashgrid", 32, 1920 * 1080)
            scalar = emulate_uncached(app, "multi_res_hashgrid", 32)
            assert rebuilt.speedup == pytest.approx(scalar.speedup, rel=RTOL)
            assert rebuilt.amdahl_bound == pytest.approx(
                scalar.amdahl_bound, rel=RTOL
            )

    def test_to_records_flat_view(self):
        result = sweep_grid(
            SweepGrid(apps=("gia",), pixel_counts=(100, 200))
        )
        records = result.to_records()
        assert len(records) == result.grid.size
        assert {r["n_pixels"] for r in records} == {100, 200}


# ---------------------------------------------------------------------------
# registry-driven axis harness
# ---------------------------------------------------------------------------
# Value pools per registered axis.  The harness below iterates the axis
# REGISTRY, not a private list, so registering a new axis without adding
# a pool here fails loudly instead of silently skipping coverage.
_AXIS_VALUE_POOLS = {
    "apps": APP_NAMES,
    "schemes": ("multi_res_hashgrid", "low_res_densegrid"),
    "scale_factors": (8, 32, 64),
    "pixel_counts": (518_400, 2_073_600),
    "clocks_ghz": (0.9, 1.2, 1.695),
    "grid_sram_kb": (256, 512, 1024),
    "n_engines": (8, 16, 32),
    "n_batches": (4, 8, 16),
    "gridtypes": ("hash", "tiled"),
    "log2_hashmap_sizes": (14, 19, 22),
    "per_level_scales": (1.26, 1.5, 2.0),
}


@st.composite
def registry_grids(draw):
    """A random SweepGrid drawn generically from the axis registry.

    At most three axes sweep two values (8-point ceiling keeps the
    scalar reference engine cheap); every other axis pins one value.
    Extension axes may also stay unset, exercising the inherit path.
    """
    names = [spec.name for spec in AXES]
    multi = draw(
        st.lists(st.sampled_from(names), min_size=0, max_size=3, unique=True)
    )
    kwargs = {}
    for spec in AXES:
        pool = _AXIS_VALUE_POOLS[spec.name]
        if spec.name in multi:
            kwargs[spec.name] = tuple(
                draw(st.lists(st.sampled_from(pool), min_size=2, max_size=2,
                              unique=True))
            )
        elif spec.legacy or draw(st.booleans()):
            kwargs[spec.name] = (draw(st.sampled_from(pool)),)
    return SweepGrid(**kwargs)


class TestRegistryAxes:
    """Generic engine-parity coverage over every registered axis."""

    def test_every_registered_axis_has_a_value_pool(self):
        assert set(_AXIS_VALUE_POOLS) == {spec.name for spec in AXES}

    def test_registry_extension_axes_present(self):
        from repro.core.axes import EXTENSION_AXIS_FIELDS

        assert EXTENSION_AXIS_FIELDS == (
            "gridtypes", "log2_hashmap_sizes", "per_level_scales"
        )

    @given(registry_grids())
    @settings(max_examples=25, deadline=None)
    def test_engines_agree_on_registry_grids(self, grid):
        """vectorized == scalar bit for bit, whatever axes are swept."""
        vec = sweep_grid(grid, engine="vectorized", use_cache=False)
        scal = sweep_grid(grid, engine="scalar", use_cache=False)
        resolved = grid.resolve()
        assert vec.accelerated_ms.shape == resolved.shape
        assert len(resolved.shape) == (11 if resolved.is_extended else 8)
        for name in _FIELDS:
            np.testing.assert_array_equal(
                getattr(vec, name), getattr(scal, name), err_msg=name
            )

    @given(
        st.sampled_from(_AXIS_VALUE_POOLS["gridtypes"]),
        st.sampled_from(_AXIS_VALUE_POOLS["log2_hashmap_sizes"]),
        st.sampled_from(_AXIS_VALUE_POOLS["per_level_scales"]),
    )
    @settings(max_examples=12, deadline=None)
    def test_encoding_axes_reach_the_batched_fast_path(self, gt, log2_t, b):
        """The three new axes flow through emulate_batch end to end."""
        block = emulate_batch(
            "nerf", "multi_res_hashgrid", (8,), (2_073_600,),
            gridtypes=(gt,), log2_hashmap_sizes=(log2_t,),
            per_level_scales=(b,),
        )
        assert block["accelerated_ms"].shape == (1,) * 9
        assert np.all(np.isfinite(block["accelerated_ms"]))

    def test_inactive_extension_axes_keep_seed_shape(self):
        """Registered-but-unswept axes stay invisible: 8-dim arrays."""
        from repro.core.axes import (
            GRIDTYPE_AUTO, LOG2_HASHMAP_INHERIT, PER_LEVEL_SCALE_INHERIT,
        )

        grid = SweepGrid(
            apps=("nerf",), scale_factors=(8,),
            gridtypes=(GRIDTYPE_AUTO,),
            log2_hashmap_sizes=(LOG2_HASHMAP_INHERIT,),
            per_level_scales=(PER_LEVEL_SCALE_INHERIT,),
        )
        assert not grid.is_extended
        result = sweep_grid(grid, use_cache=False)
        assert result.accelerated_ms.ndim == 8
        plain = sweep_grid(
            SweepGrid(apps=("nerf",), scale_factors=(8,)), use_cache=False
        )
        np.testing.assert_array_equal(
            result.accelerated_ms, plain.accelerated_ms
        )
