"""Tests for the triangle-wave encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encodings import TriangleWaveEncoding, triangle_wave


class TestTriangleWave:
    def test_known_values(self):
        x = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
        np.testing.assert_allclose(triangle_wave(x), [1.0, 0.5, 0.0, 0.5, 1.0])

    @given(st.floats(-100, 100))
    @settings(max_examples=40)
    def test_periodic_and_bounded(self, x):
        a = triangle_wave(np.array([x]))
        b = triangle_wave(np.array([x + 1.0]))
        assert a[0] == pytest.approx(b[0], abs=1e-9)
        assert 0.0 <= a[0] <= 1.0


class TestTriangleWaveEncoding:
    def test_output_dim(self):
        enc = TriangleWaveEncoding(3, num_frequencies=12)
        assert enc.output_dim == 36

    def test_output_bounded(self, unit_points_3d):
        out = TriangleWaveEncoding(3, 8).forward(unit_points_3d)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_octaves_double_frequency(self):
        enc = TriangleWaveEncoding(1, 2)
        # octave 1 at x and x+0.5 repeats (frequency 2 has period 0.5)
        a = enc.forward(np.array([[0.1]], dtype=np.float32))
        b = enc.forward(np.array([[0.6]], dtype=np.float32))
        assert a[0, 1] == pytest.approx(b[0, 1], abs=1e-6)

    def test_backward_matches_finite_differences(self):
        enc = TriangleWaveEncoding(2, 3)
        x = np.array([[0.31, 0.62]], dtype=np.float64)
        out = enc.forward(x, cache=True)
        grad = enc.backward(np.ones_like(out)).input_grad
        eps = 1e-4
        for j in range(2):
            xp, xm = x.copy(), x.copy()
            xp[0, j] += eps
            xm[0, j] -= eps
            numeric = (
                enc.forward(xp).astype(np.float64).sum()
                - enc.forward(xm).astype(np.float64).sum()
            ) / (2 * eps)
            assert grad[0, j] == pytest.approx(numeric, rel=2e-2, abs=1e-3)

    def test_backward_requires_cache(self, unit_points_2d):
        enc = TriangleWaveEncoding(2, 3)
        enc.forward(unit_points_2d)
        with pytest.raises(RuntimeError):
            enc.backward(np.zeros((unit_points_2d.shape[0], enc.output_dim)))

    def test_validation(self):
        with pytest.raises(ValueError):
            TriangleWaveEncoding(0, 4)
        with pytest.raises(ValueError):
            TriangleWaveEncoding(2, 0)

    def test_trains_gia(self):
        """The encoding is usable end to end as a GIA override."""
        from repro.apps import GIAApp

        app = GIAApp(
            image_size=16,
            seed=0,
            encoding_override=TriangleWaveEncoding(2, num_frequencies=8),
        )
        history = app.train(steps=20, batch_size=256)
        assert history[-1] < history[0]
