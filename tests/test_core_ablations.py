"""Tests for the emulator's ablation switches (DESIGN.md ablations)."""

import pytest

from repro.apps.params import APP_NAMES, get_config
from repro.core import NGPC, NGPCConfig
from repro.core.emulator import Emulator


@pytest.fixture
def emulator():
    return Emulator(NGPCConfig(scale_factor=64))


class TestEngineFusionAblation:
    def test_unfused_engines_are_slower(self, emulator):
        fused = emulator.run("nerf", "multi_res_hashgrid")
        unfused = emulator.run("nerf", "multi_res_hashgrid", fuse_engines=False)
        assert unfused.accelerated_ms > fused.accelerated_ms
        assert unfused.speedup < fused.speedup

    def test_penalty_scales_with_encoded_width(self):
        ngpc = NGPC(NGPCConfig(scale_factor=64))
        wide = ngpc.engine_fusion_penalty_ms(
            get_config("nerf", "multi_res_hashgrid"), 10**6
        )  # 32-wide encodings
        narrow = ngpc.engine_fusion_penalty_ms(
            get_config("nerf", "multi_res_densegrid"), 10**6
        )  # 16-wide
        assert wide == pytest.approx(2 * narrow, rel=1e-6)


class TestRestFusionAblation:
    def test_unfused_rest_caps_speedup(self, emulator):
        fused = emulator.run("nerf", "multi_res_hashgrid")
        unfused = emulator.run("nerf", "multi_res_hashgrid", fuse_rest=False)
        # without rest fusion the rest kernels dominate: ~1/f_rest bound
        assert unfused.speedup < 1.0 / 0.17 + 1.0
        assert fused.speedup > 3 * unfused.speedup

    def test_all_apps_benefit_from_rest_fusion(self, emulator):
        for app in APP_NAMES:
            fused = emulator.run(app, "multi_res_hashgrid")
            unfused = emulator.run(app, "multi_res_hashgrid", fuse_rest=False)
            assert fused.speedup > unfused.speedup


class TestOverlapAblation:
    def test_serial_execution_is_slower(self, emulator):
        overlapped = emulator.run("nerf", "multi_res_hashgrid")
        serial = emulator.run("nerf", "multi_res_hashgrid", overlap=False)
        assert serial.accelerated_ms > overlapped.accelerated_ms

    def test_serial_time_is_sum_of_stages(self, emulator):
        serial = emulator.run("nsdf", "multi_res_hashgrid", overlap=False)
        ngpc_stage = (
            serial.encoding_engine_ms + serial.mlp_engine_ms + serial.dma_ms
        )
        assert serial.accelerated_ms == pytest.approx(
            ngpc_stage + serial.fused_rest_ms, rel=1e-6
        )


class TestCombinedAblations:
    def test_each_feature_contributes(self, emulator):
        """full >= each single-off >= all-off, in speedup terms."""
        full = emulator.run("nerf", "multi_res_hashgrid").speedup
        no_engine_fusion = emulator.run(
            "nerf", "multi_res_hashgrid", fuse_engines=False
        ).speedup
        no_rest_fusion = emulator.run(
            "nerf", "multi_res_hashgrid", fuse_rest=False
        ).speedup
        no_overlap = emulator.run("nerf", "multi_res_hashgrid", overlap=False).speedup
        none = emulator.run(
            "nerf",
            "multi_res_hashgrid",
            fuse_engines=False,
            fuse_rest=False,
            overlap=False,
        ).speedup
        for partial in (no_engine_fusion, no_rest_fusion, no_overlap):
            assert none <= partial <= full + 1e-9
        assert none > 1.0  # even the bare engines beat the GPU
