"""Tests for losses (gradient correctness) and optimizers (convergence)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import (
    EMA,
    SGD,
    Adam,
    HuberLoss,
    L1Loss,
    L2Loss,
    MAPELoss,
    RelativeL2Loss,
    get_loss,
)

ALL_LOSSES = [L2Loss(), RelativeL2Loss(), L1Loss(), HuberLoss(), MAPELoss()]

# RelativeL2 deliberately treats its denominator as constant (matching the
# instant-ngp reference), so its analytic gradient differs from the true
# derivative; it gets its own dedicated test below.
DIFFERENTIABLE_LOSSES = [L2Loss(), L1Loss(), HuberLoss(), MAPELoss()]

arrays = hnp.arrays(
    np.float64,
    shape=(12,),
    elements=st.floats(-3.0, 3.0),
)


@pytest.mark.parametrize("loss", DIFFERENTIABLE_LOSSES, ids=lambda l: l.name)
@settings(max_examples=25)
@given(p=arrays, t=arrays)
def test_loss_gradient_matches_finite_differences(loss, p, t):
    # avoid the non-differentiable point of L1/Huber/MAPE
    mask = np.abs(p - t) < 1e-3
    p = p + mask * 1e-2
    value, grad = loss.value_and_grad(p, t)
    assert np.isfinite(value)
    eps = 1e-6
    for i in range(0, p.size, 3):
        pp, pm = p.copy(), p.copy()
        pp[i] += eps
        pm[i] -= eps
        numeric = (loss(pp, t) - loss(pm, t)) / (2 * eps)
        assert grad[i] == pytest.approx(numeric, rel=1e-3, abs=1e-6)


@pytest.mark.parametrize("loss", ALL_LOSSES, ids=lambda l: l.name)
def test_loss_zero_at_perfect_prediction(loss):
    t = np.array([1.0, -2.0, 0.5])
    value, grad = loss.value_and_grad(t.copy(), t)
    assert value == pytest.approx(0.0)
    np.testing.assert_allclose(grad, 0.0, atol=1e-12)


def test_relative_l2_gradient_uses_constant_denominator():
    """grad = 2(p-t) / (p^2 + eps) / n, denominator held constant."""
    loss = RelativeL2Loss(epsilon=1e-2)
    p = np.array([0.5, -1.0])
    t = np.array([0.0, 0.0])
    _, grad = loss.value_and_grad(p, t)
    expected = 2.0 * (p - t) / (p * p + 1e-2) / p.size
    np.testing.assert_allclose(grad, expected, rtol=1e-12)


def test_loss_shape_mismatch_raises():
    with pytest.raises(ValueError):
        L2Loss().value_and_grad(np.zeros(3), np.zeros(4))


def test_loss_registry():
    assert isinstance(get_loss("l2"), L2Loss)
    with pytest.raises(KeyError):
        get_loss("l3")


class TestOptimizers:
    def quadratic(self, params):
        """f(p) = sum ||p - 3||^2, gradient 2(p-3)."""
        return [2.0 * (p - 3.0) for p in params]

    @pytest.mark.parametrize(
        "opt",
        [SGD(0.1), SGD(0.05, momentum=0.9), Adam(0.5)],
        ids=["sgd", "sgd-momentum", "adam"],
    )
    def test_converges_on_quadratic(self, opt):
        params = [np.zeros(4), np.zeros((2, 2))]
        for _ in range(300):
            opt.step(params, self.quadratic(params))
        for p in params:
            np.testing.assert_allclose(p, 3.0, atol=1e-2)

    def test_shape_mismatch_raises(self):
        opt = SGD(0.1)
        with pytest.raises(ValueError):
            opt.step([np.zeros(3)], [np.zeros(4)])
        with pytest.raises(ValueError):
            opt.step([np.zeros(3)], [np.zeros(3), np.zeros(3)])

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD(-1.0)
        with pytest.raises(ValueError):
            SGD(0.1, momentum=1.5)
        with pytest.raises(ValueError):
            Adam(0.1, beta1=1.0)
        with pytest.raises(ValueError):
            Adam(0.1, epsilon=0.0)

    def test_adam_bias_correction_first_step(self):
        """After one step from zero moments, Adam moves ~lr in sign(grad)."""
        opt = Adam(learning_rate=0.1, epsilon=1e-12)
        params = [np.array([0.0])]
        opt.step(params, [np.array([5.0])])
        assert params[0][0] == pytest.approx(-0.1, rel=1e-6)

    def test_ema_tracks_parameters(self):
        ema = EMA(decay=0.5)
        p = [np.array([0.0])]
        ema.update(p)
        p[0][0] = 10.0
        ema.update(p)
        assert ema.shadow[0][0] == pytest.approx(5.0)

    def test_ema_requires_update(self):
        with pytest.raises(RuntimeError):
            EMA().shadow
        with pytest.raises(ValueError):
            EMA(decay=0.0)
