"""Tests for the ASCII schedule timelines (Figs. 7 and 10-b)."""

import pytest

from repro.analysis.timeline import gpu_timeline, ngpc_timeline, side_by_side


class TestGpuTimeline:
    def test_contains_all_kernel_classes(self):
        out = gpu_timeline("nerf", "multi_res_hashgrid")
        lane = out.splitlines()[1]
        for char in "EMR":
            assert char in lane

    def test_segments_ordered(self):
        """Encoding precedes MLP precedes rest along the lane (Fig. 7)."""
        lane = gpu_timeline("nerf", "multi_res_hashgrid").splitlines()[1]
        content = lane.split("|")[1]
        assert content.index("E") < content.index("M") < content.index("R")

    def test_width_respected(self):
        lane = gpu_timeline("gia", "multi_res_hashgrid", width=40).splitlines()[1]
        assert len(lane.split("|")[1]) == 40

    def test_validation(self):
        with pytest.raises(ValueError):
            gpu_timeline("nerf", "multi_res_hashgrid", width=5)


class TestNgpcTimeline:
    def test_two_lanes(self):
        out = ngpc_timeline("nerf", "multi_res_hashgrid", 8)
        lines = out.splitlines()
        assert "NGPC" in lines[1]
        assert "SMs" in lines[2]
        assert "N" in lines[1]
        assert "R" in lines[2]

    def test_bottleneck_reported(self):
        # at scale 8 NeRF is NGPC-bound; at 64 it is rest-bound
        assert "bottleneck=ngpc" in ngpc_timeline("nerf", "multi_res_hashgrid", 8)
        assert "bottleneck=rest" in ngpc_timeline("nerf", "multi_res_hashgrid", 64)

    def test_overlap_visible(self):
        """NGPC work and SM work occupy overlapping time columns."""
        out = ngpc_timeline("nerf", "multi_res_hashgrid", 16)
        lines = out.splitlines()
        ngpc_lane = lines[1].split("|")[1]
        rest_lane = lines[2].split("|")[1]
        overlapping = sum(
            1 for a, b in zip(ngpc_lane, rest_lane) if a == "N" and b == "R"
        )
        assert overlapping > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ngpc_timeline("nerf", "multi_res_hashgrid", width=3)


class TestSideBySide:
    def test_combines_both(self):
        out = side_by_side("nsdf", "multi_res_hashgrid", 32)
        assert "GPU (" in out
        assert "GPU + NGPC-32" in out
