"""Streaming sweep results: partial fronts, long-poll, disconnects.

Covers the streaming result path end to end:

- :class:`PartialSweep` fronts are exact — at full coverage they are
  bit-identical to the dense :meth:`SweepResult.pareto_front`;
- ``SweepService.sweep_stream`` emits ordered progress/front/complete
  events whose final front matches the dense ``/pareto`` answer;
- ``Sweep.watch()`` streams refining fronts and leaves the handle
  holding the dense result (no second evaluation);
- ``/result?wait=`` long-polls: 202 with progress counters while the
  sweep runs, 200 with the full result once it lands;
- the request-body cap is configurable per server and violations get a
  structured 413 naming the limit;
- a client that disconnects mid-stream releases its subscription
  without disturbing the sweep or any other subscriber.
"""

import asyncio
import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.api import Session
from repro.core.dse import (
    SweepGrid,
    _TIMING_FIELDS,
    assemble_shard_blocks,
    finalize_sweep_result,
    shard_plan,
    sweep_grid,
)
from repro.core.emulator import emulate_batch
from repro.service import (
    ServiceError,
    SweepService,
    request_json,
    start_http_server,
)
from repro.service.client import SyncServiceClient
from repro.service.progress import PartialSweep

SCHEME = "multi_res_hashgrid"

GRID = SweepGrid(
    schemes=(SCHEME,),
    scale_factors=(8, 16, 32, 64),
    clocks_ghz=(1.0, 1.695),
    grid_sram_kb=(512, 1024),
)

GRID_JSON = {
    "schemes": [SCHEME],
    "scale_factors": [8, 16, 32, 64],
    "clocks_ghz": [1.0, 1.695],
    "grid_sram_kb": [512, 1024],
}


def window_major(plan):
    """The streaming block order: same window across (app, scheme) pairs."""
    return sorted(plan, key=lambda entry: (entry[0][2], entry[0][0],
                                           entry[0][1]))


class BlockwiseSweep:
    """An injected ``sweep_fn`` that reports blocks through ``on_block``.

    Mirrors the service's own blockwise path but with a controllable
    per-block delay and a barrier hook, so tests can hold a sweep
    mid-flight while clients subscribe, disconnect, or long-poll.
    """

    def __init__(self, block_delay: float = 0.0, n_shards: int = 8):
        self.calls = 0
        self.block_delay = block_delay
        self.n_shards = n_shards
        self.first_block_done = threading.Event()
        self.release = threading.Event()
        self.release.set()  # default: run freely
        self._lock = threading.Lock()

    def __call__(self, grid, engine="vectorized", ngpc=None,
                 max_workers=None, on_block=None):
        with self._lock:
            self.calls += 1
        resolved = grid.resolve(ngpc)
        plan = window_major(shard_plan(resolved, self.n_shards))
        placed = []
        for placement, task in plan:
            if self.block_delay:
                time.sleep(self.block_delay)
            app, scheme, scales, pixels, clocks, srams, engines, batches = task
            raw = emulate_batch(
                app, scheme, scales, pixels, ngpc,
                clocks_ghz=clocks, grid_sram_kb=srams,
                n_engines=engines, n_batches=batches,
            )
            block = {name: raw[name] for name in _TIMING_FIELDS}
            block["amdahl_bound"] = raw["amdahl_bound"]
            placed.append((placement, block))
            if on_block is not None:
                on_block(placement, block)
            self.first_block_done.set()
            self.release.wait(timeout=30.0)
        return finalize_sweep_result(
            resolved, "vectorized", ngpc,
            assemble_shard_blocks(resolved, placed),
        )


# ---------------------------------------------------------------------------
# PartialSweep: exactness
# ---------------------------------------------------------------------------


class TestPartialSweep:
    def test_full_coverage_front_is_bit_identical_to_dense(self):
        resolved = GRID.resolve()
        dense = sweep_grid(resolved, engine="vectorized", use_cache=False)
        partial = PartialSweep(resolved, None)
        for placement, task in window_major(shard_plan(resolved, 8)):
            app, scheme, scales, pixels, clocks, srams, engines, batches = task
            raw = emulate_batch(app, scheme, scales, pixels, None,
                                clocks_ghz=clocks, grid_sram_kb=srams,
                                n_engines=engines, n_batches=batches)
            partial.record(
                placement, {name: raw[name] for name in _TIMING_FIELDS}
            )
        for app in (None, "nerf"):
            streamed = [
                p.to_dict()
                for p in partial.pareto_front(SCHEME, app=app)
            ]
            reference = [
                p.to_dict()
                for p in dense.pareto_front(SCHEME, app=app)
            ]
            assert streamed == reference

    def test_fronts_refine_monotonically_in_coverage(self):
        resolved = GRID.resolve()
        partial = PartialSweep(resolved, None)
        assert partial.pareto_front(SCHEME) == []
        plan = window_major(shard_plan(resolved, 8))
        n_pairs = len(resolved.apps) * len(resolved.schemes)
        covered = 0
        for i, (placement, task) in enumerate(plan):
            app, scheme, scales, pixels, clocks, srams, engines, batches = task
            raw = emulate_batch(app, scheme, scales, pixels, None,
                                clocks_ghz=clocks, grid_sram_kb=srams,
                                n_engines=engines, n_batches=batches)
            covered += partial.record(
                placement, {name: raw[name] for name in _TIMING_FIELDS}
            )
            front = partial.pareto_front(SCHEME)
            if i + 1 >= n_pairs:
                # one full window of (app, scheme) pairs -> candidates
                assert front, f"no front after {i + 1} blocks"
        assert covered == resolved.size

    def test_selector_validation(self):
        partial = PartialSweep(GRID.resolve(), None)
        with pytest.raises(Exception):
            partial.validate_selectors("not-a-scheme")
        with pytest.raises(Exception):
            partial.validate_selectors(SCHEME, app="not-an-app")


# ---------------------------------------------------------------------------
# SweepService.sweep_stream: event protocol
# ---------------------------------------------------------------------------


class TestSweepStream:
    def collect(self, service, grid):
        async def run():
            events = []
            async for event in service.sweep_stream(grid):
                events.append(event)
            return events

        return asyncio.run(run())

    def test_event_order_and_final_front_matches_dense(self):
        service = SweepService()
        events = self.collect(service, GRID_JSON)
        kinds = [e["event"] for e in events]
        assert kinds[-1] == "complete"
        assert "front" in kinds and "progress" in kinds
        # progress counters are monotone and end at the grid size
        done = [e["points_done"] for e in events if e["event"] == "progress"]
        assert done == sorted(done)
        assert done[-1] == GRID.resolve().size
        # the last front event is flagged final and matches /pareto
        fronts = [e for e in events if e["event"] == "front"]
        assert fronts[-1]["final"]
        assert all(not f["final"] for f in fronts[:-1])

        async def dense():
            return await service.pareto_front(GRID_JSON)

        assert fronts[-1]["points"] == [
            p.to_dict() for p in asyncio.run(dense())
        ]

    def test_cached_sweep_streams_terminal_events_only(self):
        service = SweepService()
        self.collect(service, GRID_JSON)
        again = self.collect(service, GRID_JSON)
        kinds = [e["event"] for e in again]
        assert kinds == ["progress", "front", "complete"]
        assert again[-1]["cached"]
        assert service.evaluations == 1

    def test_two_subscribers_one_evaluation(self):
        counting = BlockwiseSweep()
        service = SweepService(sweep_fn=counting)

        async def run():
            async def drain():
                return [e async for e in service.sweep_stream(GRID_JSON)]

            return await asyncio.gather(drain(), drain())

        first, second = asyncio.run(run())
        assert counting.calls == 1
        assert [e["event"] for e in first][-1] == "complete"
        assert [e["event"] for e in second][-1] == "complete"

    def test_bad_selector_raises_before_any_event(self):
        # pre-stream validation raises the structured error directly:
        # the HTTP layer ships it as an ordinary JSON error response
        # instead of opening a chunked stream
        service = SweepService()

        async def run():
            return [
                e async for e in service.sweep_stream(GRID_JSON, app="nope")
            ]

        with pytest.raises(ServiceError) as err:
            asyncio.run(run())
        assert err.value.status == 404


# ---------------------------------------------------------------------------
# Session.sweep(lazy=True) + Sweep.watch()
# ---------------------------------------------------------------------------


class TestWatch:
    def test_watch_refines_and_captures_dense_result(self):
        session = Session.local(engine="vectorized")
        sweep = session.sweep(GRID, lazy=True)
        fronts = list(sweep.watch(scheme=SCHEME))
        assert fronts, "watch yielded nothing"
        dense = sweep_grid(GRID.resolve().normalized(), engine="vectorized",
                           use_cache=False)
        final = [p.to_dict() for p in fronts[-1]]
        reference = [p.to_dict() for p in dense.pareto_front(SCHEME)]
        assert final == reference
        # the handle now holds the dense result: queries are local
        assert sweep.result is not None
        assert [p.to_dict() for p in sweep.pareto(scheme=SCHEME)] == reference

    def test_watch_on_evaluated_sweep_yields_once(self):
        session = Session.local(engine="vectorized")
        sweep = session.sweep(GRID)
        fronts = list(sweep.watch(scheme=SCHEME))
        assert len(fronts) == 1


# ---------------------------------------------------------------------------
# /result?wait= long-poll over real HTTP
# ---------------------------------------------------------------------------


class TestResultLongPoll:
    def test_202_with_progress_then_200_with_result(self):
        slow = BlockwiseSweep(block_delay=0.05)
        service = SweepService(sweep_fn=slow)

        async def run():
            server = await start_http_server(service, "127.0.0.1", 0)
            port = server.port
            try:
                pending = await asyncio.to_thread(
                    request_json, "127.0.0.1", port, "POST",
                    "/result?wait=0.01", {"grid": GRID_JSON},
                )
                finished = await asyncio.to_thread(
                    request_json, "127.0.0.1", port, "POST",
                    "/result?wait=30", {"grid": GRID_JSON},
                )
            finally:
                await server.close()
            return pending, finished

        (status_p, body_p), (status_f, body_f) = asyncio.run(run())
        assert status_p == 202
        assert body_p["ok"] and body_p["pending"]
        progress = body_p["progress"]
        assert progress["points_total"] == GRID.resolve().size
        assert not progress["done"]
        assert status_f == 200
        assert body_f["ok"] and "result" in body_f
        assert slow.calls == 1  # the long-poll joined the same evaluation

    def test_bad_wait_value_is_structured_400(self):
        service = SweepService()

        async def run():
            server = await start_http_server(service, "127.0.0.1", 0)
            try:
                return await asyncio.to_thread(
                    request_json, "127.0.0.1", server.port, "POST",
                    "/result?wait=forever", {"grid": GRID_JSON},
                )
            finally:
                await server.close()

        status, body = asyncio.run(run())
        assert status == 400
        assert not body["ok"]


# ---------------------------------------------------------------------------
# configurable request-body cap (structured 413)
# ---------------------------------------------------------------------------


class TestBodyCap:
    def test_oversized_body_is_structured_413(self):
        service = SweepService()

        async def run():
            server = await start_http_server(
                service, "127.0.0.1", 0, max_body_bytes=256
            )
            try:
                return await asyncio.to_thread(
                    request_json, "127.0.0.1", server.port, "POST", "/sweep",
                    {"grid": GRID_JSON, "padding": "x" * 2048},
                )
            finally:
                await server.close()

        status, body = asyncio.run(run())
        assert status == 413
        assert body["error"]["code"] == "payload-too-large"
        assert body["error"]["limit_bytes"] == 256
        assert body["error"]["content_length"] > 256

    def test_default_cap_accepts_ordinary_bodies(self):
        service = SweepService()

        async def run():
            server = await start_http_server(service, "127.0.0.1", 0)
            try:
                return await asyncio.to_thread(
                    request_json, "127.0.0.1", server.port, "POST", "/sweep",
                    {"grid": GRID_JSON},
                )
            finally:
                await server.close()

        status, body = asyncio.run(run())
        assert status == 200 and body["ok"]


# ---------------------------------------------------------------------------
# mid-stream disconnect
# ---------------------------------------------------------------------------


class TestMidStreamDisconnect:
    def test_disconnect_releases_subscription_and_sweep_survives(self):
        slow = BlockwiseSweep(block_delay=0.0)
        slow.release.clear()  # hold the sweep after its first block
        service = SweepService(sweep_fn=slow)

        async def run():
            server = await start_http_server(service, "127.0.0.1", 0)
            port = server.port
            try:
                survivor = SyncServiceClient("127.0.0.1", port)
                quitter = SyncServiceClient("127.0.0.1", port)

                def survive():
                    events = list(survivor.stream_pareto(GRID_JSON))
                    survivor.close()
                    return events

                def quit_early():
                    stream = quitter.stream_pareto(GRID_JSON)
                    first = next(stream)
                    stream.close()  # drops the TCP connection mid-stream
                    quitter.close()
                    return first

                survivor_task = asyncio.ensure_future(
                    asyncio.to_thread(survive)
                )
                await asyncio.to_thread(
                    slow.first_block_done.wait, 10.0
                )
                first = await asyncio.to_thread(quit_early)
                # server notices the dropped connection and releases the
                # quitter's subscription while the sweep is still running
                key = None
                for _ in range(200):
                    stats = service.stats()
                    subs = [
                        p["subscribers"]
                        for p in stats["progress"].values()
                    ]
                    if subs == [1]:
                        break
                    await asyncio.sleep(0.02)
                else:
                    raise AssertionError(
                        f"subscription not released: {stats['progress']}"
                    )
                slow.release.set()  # let the sweep finish
                events = await survivor_task
                return first, events
            finally:
                await server.close()

        first, events = asyncio.run(run())
        assert first["event"] in ("progress", "front")
        kinds = [e["event"] for e in events]
        assert kinds[-1] == "complete"
        assert slow.calls == 1  # the sweep ran exactly once, to completion
        # final front matches a dense evaluation of the same grid
        fronts = [e for e in events if e["event"] == "front"]
        dense = sweep_grid(
            SweepGrid(**{k: tuple(v) for k, v in GRID_JSON.items()})
            .resolve().normalized(),
            engine="vectorized", use_cache=False,
        )
        assert fronts[-1]["points"] == [
            p.to_dict() for p in dense.pareto_front(SCHEME)
        ]
