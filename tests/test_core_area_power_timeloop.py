"""Tests for the area/power model and the Timeloop-style cross-check."""

import pytest

from repro.apps.params import APP_NAMES, get_config
from repro.calibration import paper
from repro.core import (
    NFPConfig,
    NGPCConfig,
    TimeloopMLPModel,
    ngpc_area_power,
    nfp_area_mm2_45nm,
    nfp_power_w_45nm,
    scale_45_to_7nm,
)
from repro.core.mlp_engine import mlp_engine_time_ms
from repro.gpu.baseline import FHD_PIXELS
from repro.gpu.kernels import samples_per_frame


class TestAreaPower:
    def test_fig15_area_overheads(self):
        """NGPC-8 ... NGPC-64 area overheads within 5 % of the paper."""
        for scale, expected in paper.FIG15_AREA_OVERHEAD_PCT.items():
            report = ngpc_area_power(NGPCConfig(scale_factor=scale))
            assert report.area_overhead_pct == pytest.approx(expected, rel=0.05)

    def test_fig15_power_overheads(self):
        for scale, expected in paper.FIG15_POWER_OVERHEAD_PCT.items():
            report = ngpc_area_power(NGPCConfig(scale_factor=scale))
            assert report.power_overhead_pct == pytest.approx(expected, rel=0.05)

    def test_linear_in_scale(self):
        a8 = ngpc_area_power(NGPCConfig(scale_factor=8))
        a64 = ngpc_area_power(NGPCConfig(scale_factor=64))
        assert a64.area_mm2_7nm == pytest.approx(8 * a8.area_mm2_7nm)
        assert a64.power_w_7nm == pytest.approx(8 * a8.power_w_7nm)

    def test_sram_dominates_nfp_area(self):
        """16 MB of grid SRAM dwarfs the 4096-MAC array."""
        components = nfp_area_mm2_45nm()
        assert components["grid_sram"] > components["mac_array"]
        assert components["total"] == pytest.approx(
            components["mac_array"]
            + components["grid_sram"]
            + components["activation_sram"]
            + components["control"]
        )

    def test_power_components_positive(self):
        components = nfp_power_w_45nm()
        assert all(v > 0 for v in components.values())
        assert components["total"] == pytest.approx(
            components["mac_array"] + components["sram"] + components["leakage"]
        )

    def test_scaling_shrinks(self):
        area7, power7 = scale_45_to_7nm(100.0, 100.0)
        assert area7 < 100.0 and power7 < 100.0

    def test_scaling_validation(self):
        with pytest.raises(ValueError):
            scale_45_to_7nm(-1.0, 1.0)

    def test_bigger_sram_bigger_area(self):
        small = nfp_area_mm2_45nm(NFPConfig(grid_sram_kb_per_engine=512))
        big = nfp_area_mm2_45nm(NFPConfig(grid_sram_kb_per_engine=2048))
        assert big["total"] > small["total"]


class TestTimeloop:
    def test_agreement_with_emulator_within_7pct(self):
        """The paper's cross-check: Timeloop/Accelergy MLP times within ~7 %."""
        for scheme in paper.FIG13_KERNEL_SPEEDUPS_AT_64:
            for app in APP_NAMES:
                config = get_config(app, scheme)
                for scale in (8, 64):
                    ngpc = NGPCConfig(scale_factor=scale)
                    engine = mlp_engine_time_ms(config, FHD_PIXELS, ngpc)
                    timeloop = TimeloopMLPModel(ngpc).time_ms(config, FHD_PIXELS)
                    delta = abs(timeloop - engine) / engine
                    assert delta < 0.10, (app, scheme, scale, delta)

    def test_cycles_monotone_in_samples(self):
        model = TimeloopMLPModel()
        config = get_config("nerf", "multi_res_hashgrid")
        assert model.cycles(config, 2e6) > model.cycles(config, 1e6)

    def test_access_counts_structure(self):
        model = TimeloopMLPModel()
        config = get_config("nsdf", "multi_res_hashgrid")
        counts = model.access_counts(config, 1e6)
        assert set(counts) == {"mac", "register", "activation_sram", "weight_sram"}
        assert counts["register"] == pytest.approx(2 * counts["mac"])

    def test_energy_positive_and_scales(self):
        model = TimeloopMLPModel()
        config = get_config("gia", "multi_res_hashgrid")
        e1 = model.energy_mj(config, 1e6)
        e2 = model.energy_mj(config, 2e6)
        assert 0 < e1 < e2
        assert e2 == pytest.approx(2 * e1, rel=1e-6)

    def test_mapping_uses_full_array(self):
        model = TimeloopMLPModel()
        m = model.mapping(get_config("nerf", "multi_res_hashgrid"))
        assert m.spatial_in == 64 and m.spatial_out == 64
        assert m.batch_tile >= 1

    def test_validation(self):
        model = TimeloopMLPModel()
        with pytest.raises(ValueError):
            model.cycles(get_config("gia", "multi_res_hashgrid"), -1)
