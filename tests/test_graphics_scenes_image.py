"""Tests for procedural images and synthetic volumetric scenes."""

import numpy as np
import pytest

from repro.graphics import (
    SyntheticRadianceField,
    SyntheticReflectanceVolume,
    procedural_gigapixel_image,
    psnr,
    sample_image_bilinear,
)
from repro.graphics.scenes import make_training_batch


class TestProceduralImage:
    def test_shape_and_range(self):
        img = procedural_gigapixel_image(32, 48, seed=0)
        assert img.shape == (32, 48, 3)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_deterministic(self):
        a = procedural_gigapixel_image(16, 16, seed=3)
        b = procedural_gigapixel_image(16, 16, seed=3)
        np.testing.assert_array_equal(a, b)
        c = procedural_gigapixel_image(16, 16, seed=4)
        assert not np.array_equal(a, c)

    def test_has_high_frequency_content(self):
        """Adjacent-pixel differences must be non-trivial (broadband)."""
        img = procedural_gigapixel_image(64, 64, seed=0)
        dx = np.abs(np.diff(img, axis=1)).mean()
        assert dx > 0.005

    def test_validation(self):
        with pytest.raises(ValueError):
            procedural_gigapixel_image(0, 10)
        with pytest.raises(ValueError):
            procedural_gigapixel_image(10, 10, octaves=0)


class TestBilinearSampling:
    def test_exact_at_pixel_centers(self):
        img = np.arange(12, dtype=np.float32).reshape(2, 2, 3)
        out = sample_image_bilinear(img, np.array([[0.0, 0.0], [1.0, 1.0]]))
        np.testing.assert_allclose(out[0], img[0, 0])
        np.testing.assert_allclose(out[1], img[1, 1])

    def test_midpoint_average(self):
        img = np.zeros((2, 2, 1), dtype=np.float32)
        img[0, 0] = 0.0
        img[0, 1] = 1.0
        img[1, 0] = 1.0
        img[1, 1] = 2.0
        out = sample_image_bilinear(img, np.array([[0.5, 0.5]]))
        assert out[0, 0] == pytest.approx(1.0)

    def test_coords_clamped(self):
        img = np.ones((4, 4, 3), dtype=np.float32)
        out = sample_image_bilinear(img, np.array([[-1.0, 2.0]]))
        np.testing.assert_allclose(out, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_image_bilinear(np.zeros((4, 4)), np.zeros((1, 2)))
        with pytest.raises(ValueError):
            sample_image_bilinear(np.zeros((4, 4, 3)), np.zeros((1, 3)))


class TestPsnr:
    def test_identical_is_infinite(self):
        img = np.random.default_rng(0).uniform(size=(8, 8, 3))
        assert psnr(img, img) == float("inf")

    def test_known_value(self):
        a = np.zeros((10, 10))
        b = np.full((10, 10), 0.1)
        assert psnr(a, b) == pytest.approx(20.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2)), np.zeros((3, 3)))


class TestSyntheticRadianceField:
    def test_density_positive_and_peaked_at_centers(self):
        field = SyntheticRadianceField(n_blobs=3, seed=0)
        d_center = field.density(field.centers)
        d_far = field.density(np.array([[0.0, 0.0, 0.0]]))
        assert np.all(d_center > d_far[0])
        assert np.all(field.density(np.random.default_rng(0).uniform(0, 1, (50, 3))) >= 0)

    def test_color_in_unit_range(self):
        field = SyntheticRadianceField(seed=1)
        pts = np.random.default_rng(2).uniform(0, 1, (20, 3))
        dirs = np.tile([[0.0, 0.0, 1.0]], (20, 1))
        colors = field.color(pts, dirs)
        assert colors.shape == (20, 3)
        assert colors.min() >= 0 and colors.max() <= 1

    def test_color_view_dependent(self):
        field = SyntheticRadianceField(seed=1)
        pts = field.centers[:1]
        up = field.color(pts, np.array([[0.0, 0.0, 1.0]]))
        down = field.color(pts, np.array([[0.0, 0.0, -1.0]]))
        assert not np.allclose(up, down)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticRadianceField(n_blobs=0)
        field = SyntheticRadianceField(seed=0)
        with pytest.raises(ValueError):
            field.density(np.zeros((3,)))
        with pytest.raises(ValueError):
            field.color(np.zeros((2, 3)), np.zeros((3, 3)))

    def test_training_batch_shapes(self):
        field = SyntheticRadianceField(seed=0)
        pts, dirs, density, color = make_training_batch(field, 32, seed=0)
        assert pts.shape == (32, 3) and dirs.shape == (32, 3)
        assert density.shape == (32,) and color.shape == (32, 3)
        np.testing.assert_allclose(np.linalg.norm(dirs, axis=1), 1.0, rtol=1e-5)


class TestSyntheticReflectanceVolume:
    def test_reflectance_view_independent(self):
        vol = SyntheticReflectanceVolume(seed=0)
        pts = np.random.default_rng(1).uniform(0, 1, (10, 3))
        r = vol.reflectance(pts)
        assert r.shape == (10, 3)
        assert r.min() >= 0 and r.max() <= 1

    def test_shading_depends_on_view(self):
        vol = SyntheticReflectanceVolume(seed=0)
        pts = vol.centers[:1]
        a = vol.shade(pts, np.array([vol.LIGHT_DIR]))
        b = vol.shade(pts, np.array([-vol.LIGHT_DIR]))
        assert np.any(a != b)
        assert np.all(a >= b - 1e-12)  # looking along the light is brighter
