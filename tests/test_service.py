"""End-to-end concurrency harness for the async DSE query service.

The acceptance surface of the serving layer:

- **Coalescing**: 32 concurrent identical sweep requests against a
  >= 10k-point grid trigger exactly one underlying ``sweep_grid``
  execution, with deterministic hit/miss/coalesced counters.
- **Responsiveness**: a cached ``pareto_front`` query answers in
  < 50 ms while a cold sweep is still running in the executor.
- **Fidelity**: served responses match direct library calls to 1e-9.
- **Fingerprint properties** (hypothesis): reordered/duplicated axis
  spellings of one design space share a key; any single-axis
  perturbation, base-config change or calibration change splits it.
- **Structured errors**: a served scalar query against a swept axis
  without a selector is a 400 whose payload names the ambiguous axis.

No pytest-asyncio in the image: each test drives its own event loop via
``asyncio.run``, which also proves the service survives loop turnover
(the result cache outlives any single loop).
"""

import asyncio
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import fitted
from repro.core.config import NGPCConfig
from repro.core.dse import (
    AmbiguousAxisError,
    SweepGrid,
    SweepResult,
    sweep_fingerprint,
    sweep_grid,
)
from repro.gpu.baseline import FHD_PIXELS
from repro.service import (
    ServiceClient,
    ServiceError,
    SweepService,
    request_json,
    start_http_server,
)

RTOL = 1e-9

#: >= 10k points: 4 apps x 1 scheme x 4 scales x 2 pixels x 5 clocks
#: x 4 SRAMs x 4 engine counts x 4 batch counts = 10240
BIG_GRID = SweepGrid(
    scale_factors=(8, 16, 32, 64),
    pixel_counts=(FHD_PIXELS, 3840 * 2160),
    clocks_ghz=(0.8, 1.0, 1.2, 1.4, 1.695),
    grid_sram_kb=(256, 512, 1024, 2048),
    n_engines=(4, 8, 16, 32),
    n_batches=(4, 8, 16, 32),
)

SMALL_GRID = SweepGrid(apps=("nerf",), scale_factors=(8, 16, 32, 64))

SCHEME = "multi_res_hashgrid"


class CountingSweep:
    """A ``sweep_grid`` wrapper that counts executions (optionally slow)."""

    def __init__(self, delay: float = 0.0):
        self.calls = 0
        self.delay = delay
        self._lock = threading.Lock()

    def __call__(self, grid, engine="vectorized", ngpc=None, max_workers=None):
        with self._lock:
            self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        return sweep_grid(grid, engine="vectorized", ngpc=ngpc)


# ---------------------------------------------------------------------------
# coalescing + cache counters
# ---------------------------------------------------------------------------


class TestCoalescing:
    def test_32_concurrent_identical_requests_one_evaluation(self):
        assert BIG_GRID.size >= 10_000
        counting = CountingSweep(delay=0.05)
        service = SweepService(engine="vectorized", sweep_fn=counting)

        async def run():
            return await asyncio.gather(
                *(service.sweep(BIG_GRID) for _ in range(32))
            )

        results = asyncio.run(run())
        assert counting.calls == 1  # the acceptance bar: one evaluation
        assert service.evaluations == 1
        assert service.coalesced == 31
        stats = service.stats()
        # the tiered cache shape: the LRU's own view plus the per-tier
        # split (no store attached, so the disk tier never serves)
        assert stats["cache"] == {
            "size": 1, "hits": 0, "misses": 1,
            "ram_hits": 0, "disk_hits": 0, "evaluations": 1,
        }
        assert "store" not in stats
        assert stats["inflight"] == 0
        # every request got the very same result object
        assert all(r is results[0] for r in results)
        # a later request is a pure cache hit, no new evaluation
        again = asyncio.run(service.sweep(BIG_GRID))
        assert again is results[0]
        assert counting.calls == 1
        assert service.stats()["cache"]["hits"] == 1

    def test_served_result_matches_direct_library_call(self):
        service = SweepService(engine="vectorized")
        served = asyncio.run(service.sweep(BIG_GRID))
        direct = sweep_grid(served.grid, engine="vectorized", use_cache=False)
        np.testing.assert_allclose(
            served.accelerated_ms, direct.accelerated_ms, rtol=RTOL, atol=0.0
        )
        np.testing.assert_allclose(
            served.baseline_ms, direct.baseline_ms, rtol=RTOL, atol=0.0
        )
        np.testing.assert_allclose(
            served.area_overhead_pct, direct.area_overhead_pct,
            rtol=RTOL, atol=0.0,
        )

    def test_reordered_grid_spelling_is_a_cache_hit(self):
        counting = CountingSweep()
        service = SweepService(engine="vectorized", sweep_fn=counting)
        reordered = SweepGrid(
            apps=tuple(reversed(SMALL_GRID.apps)),
            scale_factors=(64, 8, 32, 16, 8),  # shuffled + duplicated
        )

        async def run():
            first = await service.sweep(SMALL_GRID)
            second = await service.sweep(reordered)
            return first, second

        first, second = asyncio.run(run())
        assert counting.calls == 1
        assert second is first
        assert service.stats()["cache"]["hits"] == 1

    def test_lru_eviction_bounds_the_cache(self):
        counting = CountingSweep()
        service = SweepService(
            engine="vectorized", sweep_fn=counting, max_cached_sweeps=1
        )
        other = SweepGrid(apps=("nerf",), scale_factors=(8,))

        async def run():
            await service.sweep(SMALL_GRID)
            await service.sweep(other)      # evicts SMALL_GRID
            await service.sweep(SMALL_GRID)  # must re-evaluate

        asyncio.run(run())
        assert counting.calls == 3
        assert service.stats()["cache"]["size"] == 1

    def test_failure_propagates_to_every_coalesced_request(self):
        class Boom(RuntimeError):
            pass

        calls = []

        def flaky(grid, engine="vectorized", ngpc=None, max_workers=None):
            calls.append(1)
            if len(calls) == 1:
                time.sleep(0.05)
                raise Boom("sweep failed")
            return sweep_grid(grid, engine="vectorized", ngpc=ngpc)

        service = SweepService(engine="vectorized", sweep_fn=flaky)

        async def run():
            return await asyncio.gather(
                *(service.sweep(SMALL_GRID) for _ in range(4)),
                return_exceptions=True,
            )

        results = asyncio.run(run())
        assert len(calls) == 1
        assert all(isinstance(r, Boom) for r in results)
        assert service.stats()["inflight"] == 0
        # the failure is not cached: the next request re-evaluates
        recovered = asyncio.run(service.sweep(SMALL_GRID))
        assert isinstance(recovered, SweepResult)
        assert len(calls) == 2

    def test_failure_after_all_awaiters_cancelled_leaves_no_asyncio_warning(
        self,
    ):
        """A failing sweep whose coalesced awaiters were all cancelled
        must not leak an asyncio 'exception was never retrieved' warning
        — the exception is handled by design (nobody is left to care)."""
        import gc

        class Boom(RuntimeError):
            pass

        def failing(grid, engine="vectorized", ngpc=None, max_workers=None):
            time.sleep(0.15)
            raise Boom("sweep failed with nobody watching")

        service = SweepService(engine="vectorized", sweep_fn=failing)
        problems = []

        async def run():
            loop = asyncio.get_running_loop()
            loop.set_exception_handler(
                lambda _loop, context: problems.append(context)
            )
            awaiters = [
                asyncio.ensure_future(service.sweep(SMALL_GRID))
                for _ in range(4)
            ]
            await asyncio.sleep(0.03)  # the evaluation is in the executor
            for awaiter in awaiters:
                awaiter.cancel()
            cancelled = await asyncio.gather(
                *awaiters, return_exceptions=True
            )
            assert all(
                isinstance(c, asyncio.CancelledError) for c in cancelled
            )
            while service._inflight:  # the evaluation fails unobserved
                await asyncio.sleep(0.01)
            await asyncio.sleep(0.05)
            del awaiters, cancelled
            # the never-retrieved warning fires from Future.__del__, so
            # collect while the loop is still alive to capture it
            gc.collect()
            await asyncio.sleep(0.01)

        asyncio.run(run())
        gc.collect()
        messages = [str(context.get("message", "")) for context in problems]
        assert not any("never retrieved" in m for m in messages), messages


# ---------------------------------------------------------------------------
# responsiveness: cached queries during a cold sweep
# ---------------------------------------------------------------------------


class TestResponsiveness:
    def test_cached_pareto_query_under_50ms_while_cold_sweep_runs(self):
        def slow_for_big(grid, engine="vectorized", ngpc=None, max_workers=None):
            if grid.size >= 1000:  # the cold sweep, not the warm-up
                time.sleep(0.6)
            return sweep_grid(grid, engine="vectorized", ngpc=ngpc)

        service = SweepService(engine="vectorized", sweep_fn=slow_for_big)

        async def run():
            await service.sweep(SMALL_GRID)  # warm the cache
            cold = asyncio.ensure_future(service.sweep(BIG_GRID))
            await asyncio.sleep(0.1)  # cold sweep is now inside the executor
            start = time.perf_counter()
            front = await service.pareto_front(SMALL_GRID, scheme=SCHEME)
            elapsed = time.perf_counter() - start
            cold_still_running = not cold.done()
            await cold
            return elapsed, front, cold_still_running

        elapsed, front, cold_still_running = asyncio.run(run())
        assert cold_still_running, "cold sweep finished before the query"
        assert elapsed < 0.050, f"cached query took {elapsed * 1000:.1f} ms"
        assert front  # and it answered something real


# ---------------------------------------------------------------------------
# query fidelity vs the library
# ---------------------------------------------------------------------------


def _assert_points_equal(served, direct):
    assert len(served) == len(direct)
    for ours, theirs in zip(served, direct):
        assert ours.scale_factor == theirs.scale_factor
        assert ours.config_axes == theirs.config_axes
        assert ours.area_overhead_pct == pytest.approx(
            theirs.area_overhead_pct, rel=RTOL
        )
        assert ours.power_overhead_pct == pytest.approx(
            theirs.power_overhead_pct, rel=RTOL
        )
        for app, speedup in theirs.speedups.items():
            assert ours.speedups[app] == pytest.approx(speedup, rel=RTOL)


class TestQueryFidelity:
    def test_pareto_front_matches_library(self):
        service = SweepService(engine="vectorized")

        async def run():
            return await service.pareto_front(
                BIG_GRID, scheme=SCHEME, n_pixels=FHD_PIXELS
            )

        served = asyncio.run(run())
        direct_result = sweep_grid(
            BIG_GRID.resolve().normalized(), engine="vectorized"
        )
        direct = direct_result.pareto_front(SCHEME, n_pixels=FHD_PIXELS)
        _assert_points_equal(served, direct)

    def test_cheapest_and_point_match_library(self):
        service = SweepService(engine="vectorized")

        async def run():
            cheapest = await service.cheapest_point_meeting_fps(
                BIG_GRID, app="nerf", fps=60.0, n_pixels=FHD_PIXELS
            )
            point = await service.point(
                BIG_GRID,
                app="nerf",
                scale_factor=8,
                n_pixels=FHD_PIXELS,
                clock_ghz=1.695,
                grid_sram_kb=1024,
                n_engines=16,
                n_batches=16,
            )
            return cheapest, point

        cheapest, point = asyncio.run(run())
        direct_result = sweep_grid(
            BIG_GRID.resolve().normalized(), engine="vectorized"
        )
        direct_cheapest = direct_result.cheapest_point_meeting_fps(
            "nerf", 60.0, n_pixels=FHD_PIXELS
        )
        _assert_points_equal([cheapest], [direct_cheapest])
        direct_point = direct_result.point(
            "nerf", SCHEME, 8, FHD_PIXELS,
            clock_ghz=1.695, grid_sram_kb=1024, n_engines=16, n_batches=16,
        )
        assert point.accelerated_ms == pytest.approx(
            direct_point.accelerated_ms, rel=RTOL
        )
        assert point.speedup == pytest.approx(direct_point.speedup, rel=RTOL)


# ---------------------------------------------------------------------------
# ambiguous-axis + structured errors
# ---------------------------------------------------------------------------


class TestStructuredErrors:
    def test_point_on_swept_axis_without_selector_names_the_axis(self):
        service = SweepService(engine="vectorized")

        async def run():
            await service.point(
                BIG_GRID, app="nerf", scale_factor=8, n_pixels=FHD_PIXELS,
                grid_sram_kb=1024, n_engines=16, n_batches=16,
                # clock_ghz deliberately omitted: the grid sweeps it
            )

        with pytest.raises(AmbiguousAxisError) as excinfo:
            asyncio.run(run())
        assert excinfo.value.axis == "clock_ghz"
        assert excinfo.value.values == BIG_GRID.clocks_ghz

    def test_http_400_payload_names_the_ambiguous_axis(self):
        async def run():
            service = SweepService(engine="vectorized")
            server = await start_http_server(service, "127.0.0.1", 0)
            client = ServiceClient("127.0.0.1", server.port)
            try:
                with pytest.raises(ServiceError) as excinfo:
                    await client.point(
                        BIG_GRID.to_dict(),
                        app="nerf",
                        scale_factor=8,
                        n_pixels=FHD_PIXELS,
                        grid_sram_kb=1024,
                        n_engines=16,
                        n_batches=16,
                    )
                return excinfo.value
            finally:
                await server.close()

        error = asyncio.run(run())
        assert error.status == 400
        assert error.code == "ambiguous-axis"
        assert error.details["axis"] == "clock_ghz"
        assert error.details["values"] == list(BIG_GRID.clocks_ghz)

    def test_not_on_grid_and_unknown_endpoint(self):
        async def run():
            service = SweepService(engine="vectorized")
            server = await start_http_server(service, "127.0.0.1", 0)
            client = ServiceClient("127.0.0.1", server.port)
            try:
                with pytest.raises(ServiceError) as not_on_grid:
                    await client.cheapest_point_meeting_fps(
                        SMALL_GRID.to_dict(), app="bogus", fps=60.0
                    )
                with pytest.raises(ServiceError) as unknown:
                    await client.request("POST", "/nonsense", {})
                with pytest.raises(ServiceError) as bad_grid:
                    await client.sweep({"bogus_axis": [1, 2]})
                return not_on_grid.value, unknown.value, bad_grid.value
            finally:
                await server.close()

        not_on_grid, unknown, bad_grid = asyncio.run(run())
        assert not_on_grid.status == 404
        assert not_on_grid.code == "not-on-grid"
        assert not_on_grid.details["axis"] == "app"
        assert unknown.status == 404
        assert bad_grid.status == 400
        assert "bogus_axis" in bad_grid.message


# ---------------------------------------------------------------------------
# HTTP end to end
# ---------------------------------------------------------------------------


class TestHTTPEndToEnd:
    def test_full_protocol_round_trip(self):
        grid = SMALL_GRID.to_dict()

        async def run():
            service = SweepService(engine="vectorized")
            server = await start_http_server(service, "127.0.0.1", 0)
            client = ServiceClient("127.0.0.1", server.port)
            try:
                health = await client.healthz()
                summary = await client.sweep(grid)
                front = await client.pareto_front(grid)
                cheapest = await client.cheapest_point_meeting_fps(
                    grid, app="nerf", fps=60.0
                )
                point = await client.point(grid, app="nerf", scale_factor=8)
                records = (
                    await client.request(
                        "POST", "/records", {"grid": grid, "limit": 3}
                    )
                )["result"]
                fetched = await client.fetch_result(grid)
                stats = await client.stats()
                return (health, summary, front, cheapest, point, records,
                        fetched, stats)
            finally:
                await server.close()

        (health, summary, front, cheapest, point, records,
         fetched, stats) = asyncio.run(run())
        assert health["ok"] is True
        assert summary["size"] == SMALL_GRID.size
        assert summary["grid"]["scale_factors"] == [8, 16, 32, 64]
        assert [p["scale_factor"] for p in front]
        assert cheapest["scale_factor"] == 8
        assert point["speedup"] == pytest.approx(
            point["baseline_ms"] / point["accelerated_ms"], rel=RTOL
        )
        assert len(records) == 3 and "speedup" in records[0]
        # the service evaluated the grid exactly once across all queries
        assert stats["evaluations"] == 1
        assert stats["cache"]["size"] == 1
        # full result round trip: served payload rebuilds bit-compatible
        direct = sweep_grid(fetched.grid, engine="vectorized")
        np.testing.assert_allclose(
            fetched.accelerated_ms, direct.accelerated_ms, rtol=RTOL, atol=0.0
        )

    def test_report_renders_from_served_result(self):
        from repro.analysis.report import design_space_section

        report_grid = SweepGrid(schemes=(SCHEME,)).to_dict()

        async def run():
            service = SweepService(engine="vectorized")
            server = await start_http_server(service, "127.0.0.1", 0)
            client = ServiceClient("127.0.0.1", server.port)
            try:
                return await client.fetch_result(report_grid)
            finally:
                await server.close()

        served = asyncio.run(run())
        served_lines = design_space_section(result=served)
        direct_lines = design_space_section()
        # identical content; app-row order may differ (normalized axes)
        assert set(served_lines) == set(direct_lines)

    def test_sync_client_against_threaded_server(self):
        """The blocking client (CLI path) talks to a live server."""
        started = threading.Event()
        holder = {}

        def serve():
            async def main():
                service = SweepService(engine="vectorized")
                server = await start_http_server(service, "127.0.0.1", 0)
                holder["port"] = server.port
                holder["stop"] = asyncio.Event()
                holder["loop"] = asyncio.get_running_loop()
                started.set()
                await holder["stop"].wait()
                await server.close()

            asyncio.run(main())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert started.wait(timeout=10)
        try:
            status, body = request_json(
                "127.0.0.1", holder["port"], "POST", "/pareto",
                {"grid": SMALL_GRID.to_dict()},
            )
            assert status == 200 and body["ok"] and body["result"]
            status, body = request_json(
                "127.0.0.1", holder["port"], "GET", "/stats"
            )
            assert status == 200 and body["result"]["evaluations"] == 1
        finally:
            holder["loop"].call_soon_threadsafe(holder["stop"].set)
            thread.join(timeout=10)
        assert not thread.is_alive()


# ---------------------------------------------------------------------------
# fingerprint properties (hypothesis)
# ---------------------------------------------------------------------------

_scales = st.lists(
    st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128]),
    min_size=1, max_size=4, unique=True,
)
_pixels = st.lists(
    st.integers(min_value=1, max_value=3840 * 2160 * 4),
    min_size=1, max_size=3, unique=True,
)
_clocks = st.lists(
    st.sampled_from([0.5, 0.8, 1.0, 1.2, 1.695]),
    min_size=1, max_size=3, unique=True,
)
_srams = st.lists(
    st.sampled_from([128, 256, 512, 1024, 2048]),
    min_size=1, max_size=3, unique=True,
)


class TestFingerprintProperties:
    @given(scales=_scales, pixels=_pixels, clocks=_clocks, srams=_srams)
    @settings(max_examples=40, deadline=None)
    def test_reordered_and_duplicated_axes_share_a_key(
        self, scales, pixels, clocks, srams
    ):
        base = SweepGrid(
            scale_factors=tuple(scales),
            pixel_counts=tuple(pixels),
            clocks_ghz=tuple(clocks),
            grid_sram_kb=tuple(srams),
        )
        respelled = SweepGrid(
            apps=tuple(reversed(base.apps)) + (base.apps[0],),
            scale_factors=tuple(reversed(scales)) + (scales[0],),
            pixel_counts=tuple(reversed(pixels)) + (pixels[-1],),
            clocks_ghz=tuple(reversed(clocks)),
            grid_sram_kb=tuple(reversed(srams)) + (srams[0],),
        )
        assert sweep_fingerprint(base) == sweep_fingerprint(respelled)

    @given(scales=_scales, pixels=_pixels, clocks=_clocks, srams=_srams)
    @settings(max_examples=40, deadline=None)
    def test_any_single_axis_perturbation_splits_the_key(
        self, scales, pixels, clocks, srams
    ):
        base = SweepGrid(
            scale_factors=tuple(scales),
            pixel_counts=tuple(pixels),
            clocks_ghz=tuple(clocks),
            grid_sram_kb=tuple(srams),
        )
        key = sweep_fingerprint(base)
        perturbed = [
            SweepGrid(
                scale_factors=tuple(scales) + (256,),  # value not drawn
                pixel_counts=tuple(pixels),
                clocks_ghz=tuple(clocks),
                grid_sram_kb=tuple(srams),
            ),
            SweepGrid(
                scale_factors=tuple(scales),
                pixel_counts=tuple(pixels) + (max(pixels) + 1,),
                clocks_ghz=tuple(clocks),
                grid_sram_kb=tuple(srams),
            ),
            SweepGrid(
                scale_factors=tuple(scales),
                pixel_counts=tuple(pixels),
                clocks_ghz=tuple(clocks) + (2.5,),
                grid_sram_kb=tuple(srams),
            ),
            SweepGrid(
                scale_factors=tuple(scales),
                pixel_counts=tuple(pixels),
                clocks_ghz=tuple(clocks),
                grid_sram_kb=tuple(srams) + (4096,),
            ),
            SweepGrid(
                apps=base.apps[:1],
                scale_factors=tuple(scales),
                pixel_counts=tuple(pixels),
                clocks_ghz=tuple(clocks),
                grid_sram_kb=tuple(srams),
            ),
        ]
        keys = [sweep_fingerprint(grid) for grid in perturbed]
        assert all(other != key for other in keys)
        # and the perturbations are pairwise distinct too
        assert len(set(keys)) == len(keys)

    def test_calibration_change_splits_the_key(self):
        key = sweep_fingerprint(SMALL_GRID)
        original = fitted.BATCH_OVERHEAD_SCALE_EXPONENT
        try:
            fitted.BATCH_OVERHEAD_SCALE_EXPONENT = original + 0.125
            assert sweep_fingerprint(SMALL_GRID) != key
        finally:
            fitted.BATCH_OVERHEAD_SCALE_EXPONENT = original
        assert sweep_fingerprint(SMALL_GRID) == key

    def test_base_config_change_splits_the_key(self):
        key = sweep_fingerprint(SMALL_GRID)
        perturbed = NGPCConfig(l2_spill_penalty=4.0)
        assert sweep_fingerprint(SMALL_GRID, ngpc=perturbed) != key

    def test_grid_dict_round_trip(self):
        assert SweepGrid.from_dict(BIG_GRID.to_dict()) == BIG_GRID
        # scalars promote to one-value axes
        grid = SweepGrid.from_dict({"apps": "nerf", "scale_factors": 8})
        assert grid.apps == ("nerf",)
        assert grid.scale_factors == (8,)
        with pytest.raises(ValueError, match="unknown grid axes"):
            SweepGrid.from_dict({"bogus": [1]})
