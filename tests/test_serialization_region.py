"""Tests for config serialization, GIA region rendering and input checks."""

import json

import numpy as np
import pytest

from repro.apps import GIAApp
from repro.apps.params import AppConfig, get_config, iter_configs
from repro.encodings import HashGridEncoding


class TestConfigSerialization:
    def test_roundtrip_all_configs(self):
        for config in iter_configs():
            data = config.to_dict()
            restored = AppConfig.from_dict(data)
            assert restored == config

    def test_json_safe(self):
        config = get_config("nerf", "multi_res_hashgrid")
        text = json.dumps(config.to_dict())
        restored = AppConfig.from_dict(json.loads(text))
        assert restored == config

    def test_dict_contents(self):
        data = get_config("gia", "multi_res_hashgrid").to_dict()
        assert data["app"] == "gia"
        assert data["grid"]["log2_table_size"] == 24
        assert data["mlps"][0]["neurons"] == 64

    def test_cli_describe(self, capsys):
        from repro.cli import main

        assert main(["describe", "--app", "nsdf"]) == 0
        out = capsys.readouterr().out
        parsed = json.loads(out)
        assert parsed["app"] == "nsdf"


class TestRenderRegion:
    @pytest.fixture(scope="class")
    def app(self):
        app = GIAApp(image_size=32, seed=0)
        app.train(steps=30, batch_size=512)
        return app

    def test_full_region_matches_render(self, app):
        full = app.render(height=16, width=16)
        region = app.render_region(0.0, 0.0, 1.0, 1.0, 16, 16)
        np.testing.assert_allclose(region, full, atol=1e-6)

    def test_zoom_shape_and_range(self, app):
        zoom = app.render_region(0.25, 0.25, 0.5, 0.5, 8, 12)
        assert zoom.shape == (8, 12, 3)
        assert zoom.min() >= 0.0 and zoom.max() <= 1.0

    def test_sub_region_is_crop_of_full(self, app):
        """Zooming the lower-left quadrant resamples the same function."""
        full = app.render_region(0.0, 0.0, 1.0, 1.0, 32, 32)
        quad = app.render_region(0.0, 0.0, 0.5, 0.5, 16, 16)
        # same pixel centers: full[j, i] at (i+.5)/32 == quad at (i+.5)/16*0.5
        np.testing.assert_allclose(quad, full[:16, :16], atol=1e-6)

    def test_validation(self, app):
        with pytest.raises(ValueError):
            app.render_region(0.5, 0.0, 0.4, 1.0, 8, 8)
        with pytest.raises(ValueError):
            app.render_region(0.0, 0.0, 1.5, 1.0, 8, 8)
        with pytest.raises(ValueError):
            app.render_region(0.0, 0.0, 1.0, 1.0, 0, 8)


class TestFiniteInputValidation:
    def test_nan_inputs_rejected(self):
        enc = HashGridEncoding(
            3, n_levels=2, n_features=2, log2_table_size=8,
            base_resolution=4, seed=0,
        )
        bad = np.array([[0.1, np.nan, 0.2]], dtype=np.float32)
        with pytest.raises(ValueError, match="finite"):
            enc.forward(bad)

    def test_inf_inputs_rejected(self):
        enc = HashGridEncoding(
            3, n_levels=2, n_features=2, log2_table_size=8,
            base_resolution=4, seed=0,
        )
        bad = np.array([[np.inf, 0.0, 0.2]], dtype=np.float32)
        with pytest.raises(ValueError, match="finite"):
            enc.forward(bad)
