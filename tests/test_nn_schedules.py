"""Tests for learning-rate schedules."""

import pytest

from repro.nn import ConstantSchedule, ExponentialDecay, WarmupCosine, get_schedule


class TestConstant:
    def test_always_base(self):
        s = ConstantSchedule(base=0.05)
        assert s(0) == s(100) == 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantSchedule(base=0.0)
        with pytest.raises(ValueError):
            ConstantSchedule(0.1)(-1)


class TestExponentialDecay:
    def test_delay_phase_constant(self):
        s = ExponentialDecay(base=1e-2, decay=0.5, interval=10, delay=100)
        assert s(0) == s(99) == 1e-2

    def test_decay_steps(self):
        s = ExponentialDecay(base=1e-2, decay=0.5, interval=10, delay=0)
        assert s(0) == pytest.approx(5e-3)
        assert s(10) == pytest.approx(2.5e-3)

    def test_floor_respected(self):
        s = ExponentialDecay(base=1e-2, decay=0.1, interval=1, delay=0, floor=1e-5)
        assert s(100) == 1e-5

    def test_monotone_nonincreasing(self):
        s = ExponentialDecay(base=1e-2, decay=0.33, interval=5, delay=3)
        values = [s(i) for i in range(50)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialDecay(decay=0.0)
        with pytest.raises(ValueError):
            ExponentialDecay(interval=0)
        with pytest.raises(ValueError):
            ExponentialDecay(base=-1)


class TestWarmupCosine:
    def test_warmup_ramps_up(self):
        s = WarmupCosine(base=1.0, warmup_steps=10, total_steps=100)
        assert s(0) == pytest.approx(0.1)
        assert s(9) == pytest.approx(1.0)

    def test_peak_then_decay(self):
        s = WarmupCosine(base=1.0, warmup_steps=10, total_steps=100, floor=0.01)
        assert s(10) == pytest.approx(1.0)
        assert s(55) < 1.0
        assert s(1000) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmupCosine(warmup_steps=100, total_steps=50)
        with pytest.raises(ValueError):
            WarmupCosine(base=0.0)


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_schedule("constant"), ConstantSchedule)
        assert isinstance(get_schedule("exponential", base=0.1), ExponentialDecay)
        with pytest.raises(KeyError):
            get_schedule("linear")
