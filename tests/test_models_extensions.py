"""Tests for the occupancy model, interconnect model, evaluation harness
and sensitivity analysis."""

import numpy as np
import pytest

from repro.analysis.sensitivity import (
    overhead_sensitivity,
    perturbed_overheads,
    perturbed_rest_fractions,
    rest_fraction_sensitivity,
    sensitivity_sweep,
)
from repro.apps import GIAApp, NSDFApp, NVRApp, NeRFApp
from repro.apps.evaluation import evaluate
from repro.calibration import fitted
from repro.core.interconnect import interconnect_report, max_fps_within_port
from repro.gpu.occupancy_model import occupancy_report, table2_occupancy


class TestOccupancyModel:
    def test_table2_nerf_encoding_geometry(self):
        report = table2_occupancy("nerf", "multi_res_hashgrid", "encoding")
        assert report.threads_per_block == 512
        assert report.warps_per_block == 16
        assert report.total_blocks == 3853 * 16
        assert report.total_threads == 3853 * 16 * 512

    def test_512_thread_blocks_achieve_full_occupancy(self):
        """3 blocks x 512 threads = 1536 = the GA102 SM thread limit."""
        report = occupancy_report((100, 1, 1), (512, 1, 1))
        assert report.blocks_per_sm == 3
        assert report.achieved_occupancy == pytest.approx(1.0)

    def test_waves_scale_with_grid(self):
        small = occupancy_report((82 * 3, 1, 1), (512, 1, 1))
        big = occupancy_report((82 * 6, 1, 1), (512, 1, 1))
        assert small.waves == pytest.approx(1.0)
        assert big.waves == pytest.approx(2.0)

    def test_all_table2_kernels_fully_occupy(self):
        """Every Table II kernel uses 512-thread blocks -> 100 % occupancy."""
        from repro.calibration import paper

        for key in paper.TABLE2:
            report = table2_occupancy(*key)
            assert report.achieved_occupancy == pytest.approx(1.0)
            assert report.waves > 1.0  # many waves: the GPU stays busy

    def test_validation(self):
        with pytest.raises(ValueError):
            occupancy_report((1, 1, 1), (100, 1, 1))  # not warp aligned
        with pytest.raises(ValueError):
            occupancy_report((0, 1, 1), (512, 1, 1))
        with pytest.raises(ValueError):
            occupancy_report((1, 1, 1), (2048, 1, 1))  # too big for an SM
        with pytest.raises(KeyError):
            table2_occupancy("nerf", "fourier", "encoding")


class TestInterconnect:
    def test_no_app_saturates_the_port(self):
        """Table III's point: NGPC IO is a fraction of GPU bandwidth."""
        for app in ("nerf", "nsdf", "gia", "nvr"):
            report = interconnect_report(app)
            assert not report.saturated
            assert report.queueing_delay_factor < 3.0

    def test_nerf_heaviest(self):
        nerf = interconnect_report("nerf").utilization
        for app in ("nsdf", "gia", "nvr"):
            assert interconnect_report(app).utilization < nerf

    def test_queueing_grows_with_load(self):
        light = interconnect_report("gia")
        heavy = interconnect_report("nerf")
        assert heavy.queueing_delay_factor > light.queueing_delay_factor

    def test_max_fps_above_operating_points(self):
        """IO never limits the Fig. 14 targets (<= 120 FPS)."""
        for app in ("nerf", "nsdf", "gia", "nvr"):
            assert max_fps_within_port(app, 3840 * 2160) > 120.0


class TestEvaluationHarness:
    def test_gia_metrics(self):
        app = GIAApp(image_size=16, seed=0)
        app.train(steps=25, batch_size=512)
        metrics = evaluate(app)
        assert metrics["psnr_db"] > 15.0
        assert 0.0 < metrics["ssim"] <= 1.0

    def test_nsdf_metrics(self):
        app = NSDFApp(seed=0)
        app.train(steps=40, batch_size=1024)
        metrics = evaluate(app)
        assert metrics["volume_mae"] < 0.1
        assert 0.5 < metrics["silhouette_agreement"] <= 1.0
        assert metrics["eikonal_deviation"] >= 0.0

    def test_nerf_metrics(self):
        app = NeRFApp(seed=0)
        app.train(steps=50, batch_size=1024)
        metrics = evaluate(app)
        assert metrics["novel_view_psnr_db"] > 10.0
        assert -1.0 <= metrics["novel_view_ssim"] <= 1.0

    def test_nvr_metrics(self):
        app = NVRApp(seed=0)
        app.train(steps=50, batch_size=1024)
        metrics = evaluate(app)
        assert metrics["density_correlation"] > 0.3
        assert metrics["albedo_mse"] < 0.2

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            evaluate(object())


class TestSensitivity:
    def test_perturbation_context_restores(self):
        original = dict(fitted.BATCH_OVERHEAD_MS_FHD_AT64)
        with perturbed_overheads(2.0):
            assert fitted.BATCH_OVERHEAD_MS_FHD_AT64["nerf"] == pytest.approx(
                2 * original["nerf"]
            )
        assert fitted.BATCH_OVERHEAD_MS_FHD_AT64 == original

    def test_rest_fraction_perturbation_keeps_sum_one(self):
        with perturbed_rest_fractions(1.2):
            for fractions in fitted.KERNEL_FRACTIONS.values():
                assert sum(fractions) == pytest.approx(1.0)

    def test_larger_overheads_reduce_speedup(self):
        result = overhead_sensitivity(1.5)
        assert all(
            result.perturbed[s] < result.nominal[s] for s in result.nominal
        )

    def test_larger_rest_fraction_reduces_speedup(self):
        result = rest_fraction_sensitivity(1.3)
        assert all(
            result.perturbed[s] < result.nominal[s] for s in result.nominal
        )

    def test_20pct_perturbations_move_results_moderately(self):
        """The headline averages are robust: +/-20 % inputs < 40 % output."""
        for result in sensitivity_sweep(factors=(0.8, 1.2)):
            assert result.max_relative_shift < 0.4

    def test_validation(self):
        with pytest.raises(ValueError):
            with perturbed_overheads(0.0):
                pass
        with pytest.raises(ValueError):
            with perturbed_rest_fractions(-1.0):
                pass
