"""Tests for the occupancy grid (empty-space skipping substrate)."""

import numpy as np
import pytest

from repro.graphics import OccupancyGrid, SyntheticRadianceField


def blob_density(points):
    """A single Gaussian blob at the cube center."""
    d2 = ((np.asarray(points) - 0.5) ** 2).sum(axis=1)
    return 50.0 * np.exp(-d2 / (2 * 0.1**2))


class TestOccupancyGrid:
    def test_starts_fully_occupied(self):
        grid = OccupancyGrid(resolution=8)
        assert grid.occupancy_fraction == 1.0

    def test_update_carves_empty_space(self):
        grid = OccupancyGrid(resolution=16, threshold=0.5)
        grid.update(blob_density)
        assert 0.0 < grid.occupancy_fraction < 0.5  # blob is small

    def test_query_matches_density(self):
        grid = OccupancyGrid(resolution=16, threshold=0.5)
        grid.update(blob_density, samples_per_cell=4)
        center = np.array([[0.5, 0.5, 0.5]])
        corner = np.array([[0.03, 0.03, 0.03]])
        assert grid.query(center)[0]
        assert not grid.query(corner)[0]

    def test_cell_centers_shape_and_range(self):
        grid = OccupancyGrid(resolution=4)
        centers = grid.cell_centers()
        assert centers.shape == (64, 3)
        assert centers.min() > 0 and centers.max() < 1

    def test_cull_samples(self):
        grid = OccupancyGrid(resolution=16, threshold=0.5)
        grid.update(blob_density, samples_per_cell=4)
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 1, size=(4 * 8, 3))
        valid = np.ones((4, 8), dtype=np.float32)
        refined, culled = grid.cull_samples(points, valid)
        assert refined.shape == (4, 8)
        assert 0.0 < culled <= 1.0  # most random points are in empty space
        assert np.all(refined <= valid)

    def test_cull_with_empty_mask(self):
        grid = OccupancyGrid(resolution=4)
        points = np.zeros((8, 3))
        refined, culled = grid.cull_samples(points, np.zeros((2, 4)))
        assert culled == 0.0
        assert refined.sum() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            OccupancyGrid(resolution=0)
        with pytest.raises(ValueError):
            OccupancyGrid(threshold=-1.0)
        grid = OccupancyGrid(resolution=4)
        with pytest.raises(ValueError):
            grid.update(blob_density, samples_per_cell=0)
        with pytest.raises(ValueError):
            grid.query(np.zeros(3))

    def test_synthetic_field_update(self):
        field = SyntheticRadianceField(seed=0)
        grid = OccupancyGrid(resolution=12, threshold=1.0)
        grid.update(field.density)
        # blob centers should be marked occupied
        assert grid.query(field.centers).all()


class TestNeRFOccupancyIntegration:
    def test_render_with_occupancy_close_to_without(self):
        from repro.apps import NeRFApp
        from repro.graphics import PinholeCamera
        from repro.graphics.camera import look_at

        app = NeRFApp(seed=0)
        app.train(steps=80, batch_size=1024)
        # the untrained-background density floor is ~exp(0)=1, so use a
        # threshold safely above it
        grid = app.build_occupancy_grid(resolution=16, threshold=3.0)
        assert 0.0 < grid.occupancy_fraction < 1.0
        cam = PinholeCamera.from_fov(
            8, 8, 45.0, look_at((0.5, 0.5, 2.1), (0.5, 0.5, 0.5))
        )
        plain = app.render(cam, n_samples=16).rgb
        skipped = app.render(cam, n_samples=16, occupancy=grid).rgb
        # skipping empty space must barely change the image
        assert np.mean(np.abs(plain - skipped)) < 0.08
