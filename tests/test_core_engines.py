"""Tests for the NFP engines: functional fixed-point model + cycle models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.params import APP_NAMES, ENCODING_SCHEMES, get_config
from repro.calibration import paper
from repro.core import (
    EncodingEngineFunctional,
    NFPConfig,
    NGPCConfig,
    encoding_engine_time_ms,
    encoding_kernel_speedup,
    mlp_engine_cycles,
    mlp_engine_time_ms,
    mlp_kernel_speedup,
    shift_modulo,
)
from repro.core.encoding_engine import level_spill_fraction, parallel_inputs
from repro.core.mlp_engine import weight_bytes, weight_matrices
from repro.encodings import DenseGridEncoding, HashGridEncoding, TiledGridEncoding


class TestShiftModulo:
    @given(
        st.lists(st.integers(0, 2**62), min_size=1, max_size=32),
        st.integers(0, 24),
    )
    @settings(max_examples=50)
    def test_equals_modulo_for_powers_of_two(self, values, log2_t):
        """The hardware approximation is exact when T is a power of two."""
        t = 1 << log2_t
        arr = np.array(values, dtype=np.uint64)
        np.testing.assert_array_equal(shift_modulo(arr, t), arr % np.uint64(t))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            shift_modulo(np.array([1]), 3)


class TestFunctionalEngine:
    @pytest.mark.parametrize(
        "enc_factory",
        [
            lambda: HashGridEncoding(
                3, n_levels=8, n_features=2, log2_table_size=12,
                base_resolution=4, growth_factor=1.5, seed=0,
            ),
            lambda: DenseGridEncoding(
                3, n_levels=4, n_features=2, base_resolution=4,
                growth_factor=1.405, seed=0,
            ),
            lambda: TiledGridEncoding(
                3, n_levels=2, n_features=8, base_resolution=16,
                growth_factor=1.0, seed=0,
            ),
        ],
        ids=["hash", "dense", "tiled"],
    )
    def test_matches_software_reference(self, enc_factory, unit_points_3d):
        """The fixed-point datapath agrees with the float reference."""
        enc = enc_factory()
        hw = EncodingEngineFunctional(enc)
        sw_out = enc.forward(unit_points_3d)
        hw_out = hw.forward(unit_points_3d)
        np.testing.assert_allclose(hw_out, sw_out, atol=2e-4)

    def test_hash_indices_identical_to_reference(self):
        """shift-mod vs mod produce identical lookup indices (T = 2^k)."""
        enc = HashGridEncoding(
            3, n_levels=8, n_features=2, log2_table_size=10,
            base_resolution=4, growth_factor=1.7, seed=0,
        )
        hw = EncodingEngineFunctional(enc)
        level = enc.n_levels - 1
        assert enc.level_uses_hash(level)
        corners = np.random.default_rng(0).integers(0, 500, size=(32, 8, 3))
        np.testing.assert_array_equal(
            hw._grid_index(corners, level), enc._index_coords(corners, level)
        )

    def test_quantized_features_stay_close(self, unit_points_3d):
        enc = HashGridEncoding(
            3, n_levels=4, n_features=2, log2_table_size=10,
            base_resolution=4, growth_factor=1.5, seed=0,
        )
        # give the tables non-trivial content
        for t in enc.tables:
            t[...] = np.random.default_rng(1).uniform(-1, 1, t.shape)
        hw = EncodingEngineFunctional(enc, quantize_features=True)
        sw_out = enc.forward(unit_points_3d)
        hw_out = hw.forward(unit_points_3d)
        # 8-bit quantization: errors bounded by ~1/127 of the range
        assert np.max(np.abs(hw_out - sw_out)) < 0.05

    def test_rejects_non_power_of_two_table(self):
        enc = HashGridEncoding(
            3, n_levels=2, n_features=2, log2_table_size=10,
            base_resolution=4, seed=0,
        )
        enc.table_size = 1000  # simulate a bad configuration
        with pytest.raises(ValueError):
            EncodingEngineFunctional(enc)


class TestEncodingCycleModel:
    def test_parallel_inputs_matches_paper(self):
        """Section V: hashgrid 1 input, densegrid 2, low-res densegrid 8."""
        assert parallel_inputs(16) == 1
        assert parallel_inputs(8) == 2
        assert parallel_inputs(2) == 8

    def test_time_scales_inversely_with_scale_factor(self):
        config = get_config("nerf", "multi_res_hashgrid")
        t8 = encoding_engine_time_ms(config, ngpc=NGPCConfig(scale_factor=8))
        t64 = encoding_engine_time_ms(config, ngpc=NGPCConfig(scale_factor=64))
        assert t8 / t64 == pytest.approx(8.0, rel=0.05)

    def test_time_scales_with_pixels(self):
        config = get_config("gia", "multi_res_hashgrid")
        t1 = encoding_engine_time_ms(config, n_pixels=10**6)
        t2 = encoding_engine_time_ms(config, n_pixels=2 * 10**6)
        assert t2 > t1

    def test_fig13_encoding_anchor(self):
        """Four-app mean encoding speedup at 64 matches Fig. 13."""
        for scheme, targets in paper.FIG13_KERNEL_SPEEDUPS_AT_64.items():
            speedups = [encoding_kernel_speedup(a, scheme, 64) for a in APP_NAMES]
            mean = sum(speedups) / len(speedups)
            assert mean == pytest.approx(targets["encoding"], rel=0.05)

    def test_spill_fractions(self):
        """Hashgrid levels fit the 1 MB SRAM (T=2^19 x 2 x 1 B = 1 MB), but
        the 3D dense grids' fine levels exceed it and spill."""
        nerf_hash = get_config("nerf", "multi_res_hashgrid")
        nerf_dense = get_config("nerf", "multi_res_densegrid")
        nerf_lrdg = get_config("nerf", "low_res_densegrid")
        gia_hash = get_config("gia", "multi_res_hashgrid")
        ngpc = NGPCConfig()
        assert level_spill_fraction(nerf_hash, ngpc) == 0.0
        assert level_spill_fraction(nerf_dense, ngpc) > 0
        assert level_spill_fraction(nerf_lrdg, ngpc) == 1.0  # 128^3 x 8 x 1B
        # GIA is 2D: even its finest level is far below 1 MB
        assert level_spill_fraction(gia_hash, ngpc) == 0.0

    def test_validation(self):
        config = get_config("nerf", "multi_res_hashgrid")
        with pytest.raises(ValueError):
            encoding_engine_time_ms(config, n_pixels=0)
        with pytest.raises(ValueError):
            parallel_inputs(0)


class TestMLPEngine:
    def test_weight_matrices(self):
        """NeRF: density (3 hidden -> 4 matrices) + color (4 -> 5) = 9."""
        assert weight_matrices(get_config("nerf", "multi_res_hashgrid")) == 9
        assert weight_matrices(get_config("nsdf", "multi_res_hashgrid")) == 5

    def test_weights_fit_on_chip(self):
        """Every Table I network fits in a small weight SRAM (< 64 KB)."""
        for app in APP_NAMES:
            config = get_config(app, "multi_res_hashgrid")
            assert weight_bytes(config) < 64 * 1024

    def test_cycles_monotone_in_samples(self):
        config = get_config("nsdf", "multi_res_hashgrid")
        assert mlp_engine_cycles(config, 2000) > mlp_engine_cycles(config, 1000)

    def test_fig13_mlp_anchor(self):
        for scheme, targets in paper.FIG13_KERNEL_SPEEDUPS_AT_64.items():
            speedups = [mlp_kernel_speedup(a, scheme, 64) for a in APP_NAMES]
            mean = sum(speedups) / len(speedups)
            assert mean == pytest.approx(targets["mlp"], rel=0.05)

    def test_speedup_scales_linearly(self):
        s8 = mlp_kernel_speedup("nerf", "multi_res_hashgrid", 8)
        s64 = mlp_kernel_speedup("nerf", "multi_res_hashgrid", 64)
        assert s64 / s8 == pytest.approx(8.0, rel=0.05)

    def test_validation(self):
        config = get_config("nerf", "multi_res_hashgrid")
        with pytest.raises(ValueError):
            mlp_engine_cycles(config, -1)
        with pytest.raises(ValueError):
            mlp_engine_time_ms(config, n_pixels=0)


class TestNFPConfig:
    def test_defaults_match_paper(self):
        nfp = NFPConfig()
        assert nfp.n_encoding_engines == 16
        assert nfp.grid_sram_kb_per_engine == 1024
        assert nfp.macs == 64 * 64
        assert nfp.clock_ghz == pytest.approx(1.695)

    def test_validation(self):
        with pytest.raises(ValueError):
            NFPConfig(clock_ghz=0)
        with pytest.raises(ValueError):
            NFPConfig(n_encoding_engines=0)
        with pytest.raises(ValueError):
            NFPConfig(mac_rows=0)
        with pytest.raises(ValueError):
            NGPCConfig(scale_factor=0)
        with pytest.raises(ValueError):
            NGPCConfig(l2_spill_penalty=0.5)
