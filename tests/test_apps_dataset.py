"""Tests for multi-view dataset synthesis and image-only NeRF training."""

import numpy as np
import pytest

from repro.apps import NeRFApp
from repro.apps.dataset import MultiViewDataset, synthesize_dataset
from repro.graphics import PinholeCamera, SyntheticRadianceField, psnr
from repro.graphics.camera import look_at


@pytest.fixture(scope="module")
def dataset():
    scene = SyntheticRadianceField(seed=7)
    return synthesize_dataset(scene, n_views=6, resolution=16, n_samples=16, seed=0)


class TestSynthesize:
    def test_shapes(self, dataset):
        assert dataset.n_views == 6
        assert dataset.images.shape == (6, 16, 16, 3)
        assert dataset.n_rays == 6 * 16 * 16
        assert dataset.origins.shape == (dataset.n_rays, 3)

    def test_pixels_in_unit_range(self, dataset):
        assert dataset.pixels.min() >= 0.0
        assert dataset.pixels.max() <= 1.0 + 1e-5

    def test_views_differ(self, dataset):
        assert not np.allclose(dataset.images[0], dataset.images[1])

    def test_cameras_look_at_volume_center(self, dataset):
        for cam in dataset.cameras:
            to_center = np.array([0.5, 0.5, 0.5]) - cam.position
            forward = -cam.camera_to_world[:3, 2]
            cosine = to_center @ forward / np.linalg.norm(to_center)
            assert cosine > 0.99

    def test_deterministic(self):
        scene = SyntheticRadianceField(seed=7)
        a = synthesize_dataset(scene, n_views=2, resolution=8, n_samples=8, seed=3)
        b = synthesize_dataset(scene, n_views=2, resolution=8, n_samples=8, seed=3)
        np.testing.assert_array_equal(a.images, b.images)

    def test_validation(self):
        scene = SyntheticRadianceField(seed=0)
        with pytest.raises(ValueError):
            synthesize_dataset(scene, n_views=0)
        with pytest.raises(ValueError):
            MultiViewDataset(
                cameras=[],
                images=np.zeros((0, 2, 2, 3)),
                origins=np.zeros((4, 3)),
                directions=np.zeros((4, 3)),
                pixels=np.zeros((5, 3)),
            )


class TestSampling:
    def test_batch_shapes(self, dataset):
        rays, pixels = dataset.sample_batch(32, seed=0)
        assert len(rays) == 32
        assert pixels.shape == (32, 3)

    def test_batch_pixels_come_from_dataset(self, dataset):
        rays, pixels = dataset.sample_batch(16, seed=1)
        # every sampled pixel value exists in the dataset pixel pool
        pool = {tuple(np.round(p, 5)) for p in dataset.pixels}
        for p in pixels:
            assert tuple(np.round(p, 5)) in pool

    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            dataset.sample_batch(0)


class TestImageOnlyTraining:
    def test_nerf_learns_from_images_alone(self):
        """The real NeRF workflow: posed images in, novel views out."""
        app = NeRFApp(seed=0)
        ds = synthesize_dataset(
            app.scene, n_views=8, resolution=20, n_samples=20, seed=0
        )
        first_losses = [
            app.train_step_dataset(ds, n_rays=256, n_samples=20).loss
            for _ in range(5)
        ]
        for _ in range(70):
            last = app.train_step_dataset(ds, n_rays=256, n_samples=20).loss
        assert last < np.mean(first_losses) * 0.3
        # evaluate on a pose not in the training set
        cam = PinholeCamera.from_fov(
            16, 16, 45.0, look_at((0.5, 1.0, 2.0), (0.5, 0.5, 0.5))
        )
        rendered = app.render(cam, n_samples=20).rgb.reshape(16, 16, 3)
        truth = app.render_ground_truth(cam, n_samples=20)
        assert psnr(rendered, truth) > 20.0
