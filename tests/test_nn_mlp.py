"""Tests for the fully-fused-style MLP: shapes, gradients, training."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, FullyFusedMLP, L2Loss


def make_mlp(**kwargs):
    defaults = dict(
        input_dim=8, output_dim=3, hidden_dim=16, hidden_layers=2, seed=0
    )
    defaults.update(kwargs)
    return FullyFusedMLP(**defaults)


class TestStructure:
    def test_layer_dims(self):
        mlp = make_mlp()
        assert mlp.layer_dims == [8, 16, 16, 3]
        assert len(mlp.weights) == 3

    def test_no_biases(self):
        """Fully fused MLPs have no explicit biases (paper Section III)."""
        mlp = make_mlp()
        assert mlp.num_parameters == 8 * 16 + 16 * 16 + 16 * 3

    def test_flops_per_input(self):
        mlp = make_mlp()
        assert mlp.flops_per_input() == 2 * (8 * 16 + 16 * 16 + 16 * 3)

    def test_table1_nerf_density_shape(self):
        """The NeRF density model: 32 -> 64x3 -> 1 (Table I)."""
        mlp = FullyFusedMLP(32, 1, hidden_dim=64, hidden_layers=3, seed=0)
        assert mlp.layer_dims == [32, 64, 64, 64, 1]

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            make_mlp(input_dim=0)
        with pytest.raises(ValueError):
            make_mlp(hidden_layers=0)

    def test_seed_reproducibility(self):
        a, b = make_mlp(seed=5), make_mlp(seed=5)
        for wa, wb in zip(a.weights, b.weights):
            np.testing.assert_array_equal(wa, wb)
        c = make_mlp(seed=6)
        assert any(
            not np.array_equal(wa, wc) for wa, wc in zip(a.weights, c.weights)
        )


class TestForward:
    def test_shape(self, rng):
        mlp = make_mlp()
        out = mlp.forward(rng.normal(size=(32, 8)).astype(np.float32))
        assert out.shape == (32, 3)

    def test_rejects_wrong_width(self, rng):
        mlp = make_mlp()
        with pytest.raises(ValueError):
            mlp.forward(rng.normal(size=(4, 5)))

    def test_output_activation_applied(self, rng):
        mlp = make_mlp(output_activation="sigmoid")
        out = mlp.forward(rng.normal(size=(32, 8)).astype(np.float32))
        assert np.all((out >= 0) & (out <= 1))


class TestBackward:
    def test_requires_cached_forward(self, rng):
        mlp = make_mlp()
        mlp.forward(rng.normal(size=(4, 8)).astype(np.float32))
        with pytest.raises(RuntimeError):
            mlp.backward(np.zeros((4, 3)))

    def test_gradient_matches_finite_differences(self, rng):
        mlp = make_mlp(hidden_dim=8, hidden_layers=2)
        x = rng.normal(size=(16, 8)).astype(np.float64)
        target = rng.normal(size=(16, 3)).astype(np.float64)
        loss = L2Loss()

        def loss_value():
            return loss(mlp.forward(x), target)

        out = mlp.forward(x, cache=True)
        _, dy = loss.value_and_grad(out, target)
        grads = mlp.backward(dy)

        eps = 1e-4
        rng2 = np.random.default_rng(0)
        for li, w in enumerate(mlp.weights):
            # probe a few random entries of each weight matrix
            for _ in range(5):
                i = rng2.integers(0, w.shape[0])
                j = rng2.integers(0, w.shape[1])
                old = w[i, j]
                w[i, j] = old + eps
                up = loss_value()
                w[i, j] = old - eps
                down = loss_value()
                w[i, j] = old
                numeric = (up - down) / (2 * eps)
                assert grads.weight_grads[li][i, j] == pytest.approx(
                    numeric, rel=2e-2, abs=1e-5
                )

    def test_input_gradient_matches_finite_differences(self, rng):
        mlp = make_mlp(hidden_dim=8, hidden_layers=2)
        x = rng.normal(size=(4, 8)).astype(np.float64)
        target = rng.normal(size=(4, 3)).astype(np.float64)
        loss = L2Loss()
        out = mlp.forward(x, cache=True)
        _, dy = loss.value_and_grad(out, target)
        input_grad = mlp.backward(dy).input_grad
        eps = 1e-4
        for i in (0, 2):
            for j in (1, 5):
                xp, xm = x.copy(), x.copy()
                xp[i, j] += eps
                xm[i, j] -= eps
                numeric = (loss(mlp.forward(xp), target) - loss(mlp.forward(xm), target)) / (
                    2 * eps
                )
                assert input_grad[i, j] == pytest.approx(numeric, rel=2e-2, abs=1e-5)


class TestTraining:
    @pytest.mark.parametrize("opt_cls", [SGD, Adam])
    def test_loss_decreases_on_toy_regression(self, opt_cls, rng):
        mlp = make_mlp(input_dim=2, output_dim=1, hidden_dim=32, hidden_layers=2)
        opt = opt_cls(learning_rate=1e-2)
        loss = L2Loss()
        x = rng.uniform(-1, 1, size=(256, 2)).astype(np.float32)
        y = (np.sin(3 * x[:, :1]) * np.cos(2 * x[:, 1:])).astype(np.float32)
        first = None
        for step in range(200):
            out = mlp.forward(x, cache=True)
            value, dy = loss.value_and_grad(out, y)
            if first is None:
                first = value
            grads = mlp.backward(dy)
            opt.step(mlp.parameters(), grads.weight_grads)
        assert value < first * 0.5

    def test_state_dict_roundtrip(self, rng):
        a = make_mlp(seed=1)
        b = make_mlp(seed=2)
        x = rng.normal(size=(8, 8)).astype(np.float32)
        assert not np.allclose(a.forward(x), b.forward(x))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_load_state_dict_validates(self):
        a, b = make_mlp(), make_mlp(hidden_dim=8)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())
