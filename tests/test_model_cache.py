"""Regression tests for :class:`repro.core.cache.ModelCache`.

Two bugs are pinned here, both found while putting the cache under the
persistent store tier:

- ``put`` used to evict an entry whenever the cache was at capacity,
  even when the key being written was *already present* — so every
  overwrite at capacity silently shrank the cache by dropping an
  unrelated (and possibly hot) entry.
- ``get`` used to treat a stored ``None`` as a miss: ``None`` results
  (e.g. "no configuration meets this FPS target") were re-computed on
  every lookup, the hit/miss counters lied, and an LRU cache never
  refreshed the entry's recency, so legitimate ``None`` entries were
  always first in line for eviction.
"""

import pytest

from repro.core.cache import ModelCache


class TestPutOverwriteAtCapacity:
    def test_overwrite_at_capacity_evicts_nothing(self):
        cache = ModelCache("t", maxsize=2, register=False)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite while full: size cannot change
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.get("b") == 2

    def test_overwrite_at_capacity_evicts_nothing_lru(self):
        cache = ModelCache("t", maxsize=2, lru=True, register=False)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("b", 20)
        assert len(cache) == 2
        assert cache.get("a") == 1
        assert cache.get("b") == 20

    def test_new_key_at_capacity_still_evicts_fifo(self):
        cache = ModelCache("t", maxsize=2, register=False)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # genuinely new key: "a" (oldest) goes
        assert len(cache) == 2
        assert "a" not in cache
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_lru_overwrite_is_a_recency_touch(self):
        cache = ModelCache("t", maxsize=2, lru=True, register=False)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite moves "a" to the MRU end...
        cache.put("c", 3)   # ...so the eviction victim is "b"
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache


class TestNoneIsCacheable:
    def test_stored_none_is_a_hit(self):
        cache = ModelCache("t", register=False)
        cache.put("k", None)
        assert cache.get("k", default="sentinel") is None
        assert cache.info() == {"size": 1, "hits": 1, "misses": 0}

    def test_absent_key_is_a_miss_with_default(self):
        cache = ModelCache("t", register=False)
        assert cache.get("absent") is None
        assert cache.get("absent", default=42) == 42
        assert cache.info() == {"size": 0, "hits": 0, "misses": 2}

    def test_stored_none_refreshes_lru_recency(self):
        cache = ModelCache("t", maxsize=2, lru=True, register=False)
        cache.put("none-key", None)
        cache.put("b", 2)
        assert cache.get("none-key") is None  # a hit: now the MRU entry
        cache.put("c", 3)  # evicts "b", not the refreshed "none-key"
        assert "none-key" in cache
        assert "b" not in cache

    def test_contains_does_not_touch_counters_or_recency(self):
        cache = ModelCache("t", maxsize=2, lru=True, register=False)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache  # membership only: "a" stays LRU
        cache.put("c", 3)
        assert "a" not in cache
        assert cache.info() == {"size": 2, "hits": 0, "misses": 0}


class TestBasics:
    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError):
            ModelCache("t", maxsize=0, register=False)

    def test_clear_resets_counters(self):
        cache = ModelCache("t", register=False)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        cache.clear()
        assert cache.info() == {"size": 0, "hits": 0, "misses": 0}
