"""Tests for the volume-rendering compositing stage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.graphics import alpha_from_density, composite_rays, transmittance
from repro.graphics.volume_rendering import composite_backward


def make_inputs(n_rays=4, n_samples=8, seed=0):
    rng = np.random.default_rng(seed)
    colors = rng.uniform(0, 1, size=(n_rays, n_samples, 3)).astype(np.float32)
    densities = rng.uniform(0, 30, size=(n_rays, n_samples)).astype(np.float32)
    ts = np.sort(rng.uniform(0.5, 2.0, size=(n_rays, n_samples)), axis=1).astype(
        np.float32
    )
    return colors, densities, ts


class TestAlphaAndTransmittance:
    def test_alpha_range(self):
        alphas = alpha_from_density(np.array([0.0, 1.0, 100.0]), np.array([0.1] * 3))
        assert np.all((alphas >= 0) & (alphas <= 1))
        assert alphas[0] == 0.0

    def test_alpha_rejects_negative(self):
        with pytest.raises(ValueError):
            alpha_from_density(np.array([-1.0]), np.array([0.1]))
        with pytest.raises(ValueError):
            alpha_from_density(np.array([1.0]), np.array([-0.1]))

    def test_transmittance_starts_at_one_and_decreases(self):
        alphas = np.array([[0.5, 0.5, 0.5]])
        trans = transmittance(alphas)
        np.testing.assert_allclose(trans[0], [1.0, 0.5, 0.25])

    @given(
        hnp.arrays(np.float64, (6,), elements=st.floats(0.0, 1.0)),
    )
    @settings(max_examples=40)
    def test_transmittance_monotone_nonincreasing(self, alphas):
        trans = transmittance(alphas[None, :])
        assert np.all(np.diff(trans[0]) <= 1e-12)


class TestComposite:
    def test_weights_partition(self):
        colors, densities, ts = make_inputs()
        result = composite_rays(colors, densities, ts)
        assert np.all(result.weights >= 0)
        totals = result.weights.sum(axis=1)
        assert np.all(totals <= 1.0 + 1e-5)
        np.testing.assert_allclose(totals, result.opacity, rtol=1e-5)

    def test_opaque_front_sample_dominates(self):
        """A huge density at the first sample should block all others."""
        colors = np.zeros((1, 4, 3), dtype=np.float32)
        colors[0, 0] = [1.0, 0.0, 0.0]
        colors[0, 1:] = [0.0, 1.0, 0.0]
        densities = np.array([[1e4, 50.0, 50.0, 50.0]], dtype=np.float32)
        ts = np.array([[1.0, 1.1, 1.2, 1.3]], dtype=np.float32)
        result = composite_rays(colors, densities, ts)
        np.testing.assert_allclose(result.rgb[0], [1.0, 0.0, 0.0], atol=1e-3)
        assert result.depth[0] == pytest.approx(1.0, abs=1e-3)

    def test_empty_space_returns_background(self):
        colors = np.ones((1, 4, 3), dtype=np.float32)
        densities = np.zeros((1, 4), dtype=np.float32)
        ts = np.linspace(1, 2, 4, dtype=np.float32)[None, :]
        result = composite_rays(colors, densities, ts, background=0.25)
        np.testing.assert_allclose(result.rgb[0], 0.25, atol=1e-6)
        assert result.opacity[0] == pytest.approx(0.0)

    def test_rgb_bounded_by_inputs(self):
        colors, densities, ts = make_inputs(seed=3)
        result = composite_rays(colors, densities, ts)
        assert result.rgb.min() >= -1e-6
        assert result.rgb.max() <= 1.0 + 1e-5

    def test_constant_color_volume_preserves_color(self):
        """Compositing a constant-color dense volume returns that color."""
        colors = np.full((1, 32, 3), 0.7, dtype=np.float32)
        densities = np.full((1, 32), 200.0, dtype=np.float32)
        ts = np.linspace(1, 2, 32, dtype=np.float32)[None, :]
        result = composite_rays(colors, densities, ts)
        np.testing.assert_allclose(result.rgb[0], 0.7, atol=1e-3)

    def test_shape_validation(self):
        colors, densities, ts = make_inputs()
        with pytest.raises(ValueError):
            composite_rays(colors[..., :2], densities, ts)
        with pytest.raises(ValueError):
            composite_rays(colors, densities[:, :4], ts)
        with pytest.raises(ValueError):
            composite_rays(colors, densities, ts[:, ::-1])

    def test_depth_within_sample_range(self):
        colors, densities, ts = make_inputs(seed=7)
        result = composite_rays(colors, densities, ts)
        assert np.all(result.depth >= ts.min() - 1e-5)
        assert np.all(result.depth <= ts.max() + 1e-5)


class TestCompositeBackward:
    def test_gradient_shape_and_linearity(self):
        colors, densities, ts = make_inputs()
        result = composite_rays(colors, densities, ts)
        g = composite_backward(colors, result.weights, np.ones((4, 3)))
        assert g.shape == colors.shape
        # doubling the upstream gradient doubles the output
        g2 = composite_backward(colors, result.weights, 2 * np.ones((4, 3)))
        np.testing.assert_allclose(g2, 2 * g)

    def test_gradient_matches_finite_differences(self):
        colors, densities, ts = make_inputs(n_rays=1, n_samples=4)
        result = composite_rays(colors, densities, ts)
        grad = composite_backward(colors, result.weights, np.ones((1, 3)))
        eps = 1e-3
        cp = colors.copy()
        cp[0, 1, 0] += eps
        up = composite_rays(cp, densities, ts).rgb.sum()
        cp[0, 1, 0] -= 2 * eps
        down = composite_rays(cp, densities, ts).rgb.sum()
        numeric = (up - down) / (2 * eps)
        assert grad[0, 1, 0] == pytest.approx(numeric, rel=1e-2)

    def test_validation(self):
        colors, densities, ts = make_inputs()
        result = composite_rays(colors, densities, ts)
        with pytest.raises(ValueError):
            composite_backward(colors, result.weights[:, :3], np.ones((4, 3)))
        with pytest.raises(ValueError):
            composite_backward(colors, result.weights, np.ones((4, 2)))
