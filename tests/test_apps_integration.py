"""Integration tests: each application trains and renders end to end."""

import numpy as np
import pytest

from repro.apps import GIAApp, NSDFApp, NVRApp, NeRFApp
from repro.graphics import PinholeCamera, psnr
from repro.graphics.camera import look_at


class TestGIA:
    def test_training_reduces_loss_and_reaches_reasonable_psnr(self):
        app = GIAApp(image_size=32, seed=0)
        history = app.train(steps=40, batch_size=512)
        assert history[-1] < history[0] * 0.5
        assert app.evaluate_psnr() > 22.0

    def test_render_shape_and_range(self):
        app = GIAApp(image_size=16, seed=0)
        app.train(steps=5, batch_size=128)
        img = app.render()
        assert img.shape == (16, 16, 3)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_render_custom_resolution(self):
        app = GIAApp(image_size=16, seed=0)
        img = app.render(height=8, width=12)
        assert img.shape == (8, 12, 3)

    def test_rejects_wrong_config(self):
        from repro.apps import get_config

        with pytest.raises(ValueError):
            GIAApp(config=get_config("nerf", "multi_res_hashgrid"))

    def test_rejects_bad_image(self):
        with pytest.raises(ValueError):
            GIAApp(image=np.zeros((4, 4)), seed=0)

    @pytest.mark.parametrize(
        "scheme",
        ["multi_res_hashgrid", "multi_res_densegrid", "low_res_densegrid"],
    )
    def test_all_encoding_schemes_train(self, scheme):
        app = GIAApp(scheme=scheme, image_size=16, seed=0)
        history = app.train(steps=15, batch_size=256)
        assert history[-1] < history[0]


class TestNSDF:
    def test_training_reduces_loss_and_mae(self):
        app = NSDFApp(seed=0)
        mae_before = app.evaluate_mae(n_points=512)
        history = app.train(steps=40, batch_size=512)
        assert history[-1] < history[0] * 0.5
        assert app.evaluate_mae(n_points=512) < mae_before

    def test_render_sphere_traces_network(self):
        app = NSDFApp(seed=0)
        app.train(steps=30, batch_size=512)
        cam = PinholeCamera.from_fov(16, 16, 45.0, look_at((0, 0.4, 1.4), (0, 0, 0)))
        result = app.render(camera=cam, max_steps=32)
        assert result.hit.shape == (256,)
        # a trained NSDF should produce some surface hits from this view
        assert result.hit.sum() > 0

    def test_predict_signs(self):
        """After training, inside points are negative, far points positive."""
        app = NSDFApp(seed=0)
        app.train(steps=60, batch_size=512)
        inside = app.predict(np.array([[0.15, 0.0, 0.0]], dtype=np.float32))
        outside = app.predict(np.array([[0.49, 0.49, 0.49]], dtype=np.float32))
        assert inside[0] < outside[0]

    def test_rejects_wrong_config(self):
        from repro.apps import get_config

        with pytest.raises(ValueError):
            NSDFApp(config=get_config("gia", "multi_res_hashgrid"))


class TestNeRF:
    def test_point_training_reduces_loss(self):
        app = NeRFApp(seed=0)
        history = app.train(steps=25, batch_size=512)
        assert history[-1] < history[0] * 0.8

    def test_ray_training_reduces_loss(self):
        app = NeRFApp(seed=0)
        app.train(steps=15, batch_size=512)  # warm start the fields
        losses = [app.train_step_rays(n_rays=64, n_samples=16).loss for _ in range(10)]
        assert min(losses[-3:]) < losses[0] * 1.5  # does not diverge
        assert np.isfinite(losses).all()

    def test_render_matches_ground_truth_after_training(self):
        app = NeRFApp(seed=0)
        app.train(steps=60, batch_size=1024)
        cam = PinholeCamera.from_fov(
            16, 16, 45.0, look_at((0.5, 0.5, 2.1), (0.5, 0.5, 0.5))
        )
        rendered = app.render(cam, n_samples=24).rgb.reshape(16, 16, 3)
        truth = app.render_ground_truth(cam, n_samples=24)
        assert psnr(rendered, truth) > 14.0

    def test_query_shapes(self):
        app = NeRFApp(seed=0)
        pts = np.random.default_rng(0).uniform(0, 1, (10, 3)).astype(np.float32)
        dirs = np.tile([[0, 0, 1.0]], (10, 1)).astype(np.float32)
        sigma, rgb = app.query(pts, dirs)
        assert sigma.shape == (10,)
        assert rgb.shape == (10, 3)
        assert np.all(sigma >= 0)
        assert np.all((rgb >= 0) & (rgb <= 1))

    def test_rejects_wrong_config(self):
        from repro.apps import get_config

        with pytest.raises(ValueError):
            NeRFApp(config=get_config("nsdf", "multi_res_hashgrid"))


class TestNVR:
    def test_point_training_learns_the_fields(self):
        app = NVRApp(seed=0)
        history = app.train(steps=60, batch_size=512)
        # the loss is noisy (stochastic density targets); require a mild
        # decrease plus a strong density correlation with the ground truth
        assert np.mean(history[-5:]) < np.mean(history[:5])
        pts = np.random.default_rng(5).uniform(0, 1, (2000, 3)).astype(np.float32)
        sigma, albedo, _ = app.query(pts)
        truth = app.scene.density(pts)
        corr = np.corrcoef(sigma, truth)[0, 1]
        assert corr > 0.5
        assert np.mean((albedo - app.scene.reflectance(pts)) ** 2) < 0.05

    def test_ray_training_runs_and_stays_finite(self):
        app = NVRApp(seed=0)
        app.train(steps=10, batch_size=512)
        losses = [app.train_step_rays(n_rays=64, n_samples=16).loss for _ in range(5)]
        assert np.isfinite(losses).all()

    def test_render_shape(self):
        app = NVRApp(seed=0)
        app.train(steps=10, batch_size=256)
        cam = PinholeCamera.from_fov(
            8, 8, 45.0, look_at((0.5, 0.5, 2.1), (0.5, 0.5, 0.5))
        )
        result = app.render(cam, n_samples=16)
        assert result.rgb.shape == (64, 3)
        assert np.all(result.opacity <= 1.0 + 1e-5)

    def test_albedo_is_view_independent(self):
        """query() has no direction input: the learned field is reflectance."""
        app = NVRApp(seed=0)
        pts = np.random.default_rng(0).uniform(0, 1, (5, 3)).astype(np.float32)
        sigma1, albedo1, _ = app.query(pts)
        sigma2, albedo2, _ = app.query(pts)
        np.testing.assert_array_equal(albedo1, albedo2)
        np.testing.assert_array_equal(sigma1, sigma2)

    def test_shading_brightens_along_light(self):
        app = NVRApp(seed=0)
        toward = app._phase(np.array([app.scene.LIGHT_DIR]))
        away = app._phase(np.array([-app.scene.LIGHT_DIR]))
        assert toward[0, 0] > away[0, 0]

    def test_rejects_wrong_config(self):
        from repro.apps import get_config

        with pytest.raises(ValueError):
            NVRApp(config=get_config("nerf", "multi_res_hashgrid"))
