"""Tests for the cycle-level encoding-pipeline simulator."""

import pytest

from repro.core.pipeline_sim import (
    EncodingPipelineSimulator,
    PipelineConfig,
    SimResult,
    STAGE_NAMES,
    validate_throughput_assumption,
)


class TestPipelineConfig:
    def test_defaults_match_3d_engine(self):
        cfg = PipelineConfig()
        assert cfg.corners == 8  # 2^3 corner lookups
        assert cfg.sram_banks == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(corners=0)
        with pytest.raises(ValueError):
            PipelineConfig(sram_banks=0)
        with pytest.raises(ValueError):
            PipelineConfig(spill_probability=1.5)
        with pytest.raises(ValueError):
            PipelineConfig(l2_stall_cycles=-1)


class TestThroughput:
    def test_fully_banked_sustains_one_per_cycle(self):
        """The analytic model's core assumption: banks >= corners -> ~1."""
        assert validate_throughput_assumption() > 0.99

    def test_half_banks_halve_throughput(self):
        assert validate_throughput_assumption(banks=4) == pytest.approx(0.5, abs=0.01)

    def test_single_bank_serializes_corners(self):
        assert validate_throughput_assumption(banks=1) == pytest.approx(
            1.0 / 8.0, abs=0.01
        )

    def test_2d_engine_needs_only_four_banks(self):
        """GIA's 2D lookups (4 corners) saturate with 4 banks."""
        assert validate_throughput_assumption(corners=4, banks=4) > 0.99

    def test_spills_degrade_throughput(self):
        clean = EncodingPipelineSimulator(
            PipelineConfig(spill_probability=0.0)
        ).run(1000)
        spilled = EncodingPipelineSimulator(
            PipelineConfig(spill_probability=0.1), seed=1
        ).run(1000)
        assert spilled.throughput < clean.throughput
        assert spilled.stall_cycles > 0

    def test_throughput_monotone_in_spill_probability(self):
        values = []
        for p in (0.0, 0.02, 0.1, 0.5):
            sim = EncodingPipelineSimulator(
                PipelineConfig(spill_probability=p), seed=2
            )
            values.append(sim.run(800).throughput)
        assert values == sorted(values, reverse=True)


class TestSimMechanics:
    def test_pipeline_fill_cost(self):
        """A single input costs the pipeline depth plus the FIFO pop."""
        sim = EncodingPipelineSimulator(PipelineConfig())
        result = sim.run(1)
        assert result.cycles == len(STAGE_NAMES) + 1

    def test_result_accounting(self):
        result = SimResult(inputs=100, cycles=200, stall_cycles=20, bank_conflict_cycles=0)
        assert result.throughput == pytest.approx(0.5)
        assert result.stall_fraction == pytest.approx(0.1)

    def test_conflicts_counted_when_banks_short(self):
        sim = EncodingPipelineSimulator(PipelineConfig(sram_banks=4))
        result = sim.run(100)
        assert result.bank_conflict_cycles > 0

    def test_deterministic_given_seed(self):
        cfg = PipelineConfig(spill_probability=0.2)
        a = EncodingPipelineSimulator(cfg, seed=7).run(500)
        b = EncodingPipelineSimulator(cfg, seed=7).run(500)
        assert a.cycles == b.cycles

    def test_validation(self):
        with pytest.raises(ValueError):
            EncodingPipelineSimulator().run(0)
