"""Tests for the design-space exploration utilities."""

import pytest

from repro.calibration import paper
from repro.core.dse import (
    DesignPoint,
    design_space,
    efficiency_sweet_spot,
    pareto_frontier,
    smallest_scale_for_fps,
)


@pytest.fixture(scope="module")
def points():
    return design_space("multi_res_hashgrid")


class TestDesignSpace:
    def test_four_points(self, points):
        assert [p.scale_factor for p in points] == [8, 16, 32, 64]

    def test_costs_and_benefits_grow(self, points):
        areas = [p.area_overhead_pct for p in points]
        speeds = [p.average_speedup for p in points]
        assert areas == sorted(areas)
        assert speeds == sorted(speeds)

    def test_per_app_speedups_present(self, points):
        for p in points:
            assert set(p.speedups) == {"nerf", "nsdf", "gia", "nvr"}

    def test_efficiency_declines_with_scale(self, points):
        """Speedup-per-area falls as the rest kernels start dominating."""
        ratios = [p.speedup_per_area_pct for p in points]
        assert ratios[0] == max(ratios)

    def test_sweet_spot_is_smallest_scale(self, points):
        assert efficiency_sweet_spot(points).scale_factor == 8

    def test_sweet_spot_validation(self):
        with pytest.raises(ValueError):
            efficiency_sweet_spot([])


class TestParetoFrontier:
    def test_all_scales_on_frontier(self, points):
        """Bigger always costs more AND helps more here, so none dominate."""
        frontier = pareto_frontier(points)
        assert len(frontier) == len(points)

    def test_dominated_point_removed(self):
        a = DesignPoint(8, 5.0, 3.0, {"nerf": 10.0})
        b = DesignPoint(16, 10.0, 6.0, {"nerf": 8.0})  # dominated by a
        frontier = pareto_frontier([a, b])
        assert frontier == [a]


class TestSmallestScale:
    def test_nerf_4k30_needs_more_than_minimum(self):
        """NGPC-8 cannot hit NeRF 4K@30; a mid-size cluster can."""
        scale = smallest_scale_for_fps("nerf", 30, paper.RESOLUTIONS["4k"])
        assert scale in (16, 32, 64)
        assert smallest_scale_for_fps(
            "nerf", 30, paper.RESOLUTIONS["4k"], scales=(8,)
        ) is None

    def test_gia_fhd_needs_smallest(self):
        assert smallest_scale_for_fps("gia", 60, paper.RESOLUTIONS["fhd"]) == 8

    def test_unreachable_target_returns_none(self):
        assert smallest_scale_for_fps("nerf", 240, paper.RESOLUTIONS["8k"]) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            smallest_scale_for_fps("nerf", 0, 10**6)
