"""Tests for the model-consistency verification suite."""

import pytest

from repro.core.verification import Finding, is_healthy, verify_all


class TestVerification:
    @pytest.fixture(scope="class")
    def findings(self):
        return verify_all()

    def test_all_checks_pass(self, findings):
        failed = [f for f in findings if not f.passed]
        assert not failed, failed

    def test_expected_checks_present(self, findings):
        names = {f.check for f in findings}
        assert names == {
            "fig5_fraction_averages",
            "fusion_product",
            "fig13_anchors",
            "amdahl_compliance",
            "fig15_area_power",
            "table3_bandwidth",
            "baseline_frame_times",
            "pipeline_throughput",
        }

    def test_is_healthy(self, findings):
        assert is_healthy(findings)
        broken = findings + [Finding("x", False, "bad")]
        assert not is_healthy(broken)

    def test_detail_strings_informative(self, findings):
        for f in findings:
            assert len(f.detail) > 3

    def test_cli_verify(self, capsys):
        from repro.cli import main

        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out

    def test_detects_broken_constants(self):
        """Perturbing a fitted constant trips the corresponding check."""
        from repro.analysis.sensitivity import perturbed_rest_fractions
        from repro.core.verification import _check_fraction_averages

        with perturbed_rest_fractions(1.3):
            finding = _check_fraction_averages()
            assert not finding.passed
