"""Stale keep-alive reconnect matrix for both service clients.

Both :class:`SyncServiceClient` and the async :class:`ServiceClient`
promise the same retry contract on their one persistent connection:

- **fresh-fail**: a *fresh* connection that drops before one response
  byte is fatal immediately — there is no stale connection to blame;
- **stale-retry-success**: a *reused* connection that drops before one
  response byte is the stale keep-alive signature — reconnect and
  re-send exactly once;
- **stale-retry-fail**: when the one retry also drops pre-response, the
  failure is fatal (never a second retry);
- **mid-response-fatal**: once a response has started, any drop is
  fatal with no retry at all — the request was dispatched and must not
  be re-dispatched (a slow sweep must never run twice).

Each case runs against a scripted TCP server whose per-connection
behaviour is canned, so the matrix asserts not just the raised error
but how many connections and requests the server actually saw, plus
the client's ``connections_opened``/``reuses`` counters.  The scripted
server also serves the malformed-response regression: a 2xx response
without ``Content-Length`` must raise a structured 502 from the async
client instead of silently decoding an empty body as ``{}``.
"""

import asyncio
import http.client
import json
import socket
import threading

import pytest

from repro.errors import BackendUnavailableError
from repro.service.client import (
    ServiceClient,
    SyncServiceClient,
    request_json,
)
from repro.service.errors import ServiceError

OK_BODY = json.dumps({"ok": True, "schema_version": 1,
                      "result": {"pong": True}}).encode()
OK_RESPONSE = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: application/json\r\n"
    b"Content-Length: " + str(len(OK_BODY)).encode() + b"\r\n"
    b"Connection: keep-alive\r\n"
    b"\r\n" + OK_BODY
)
PARTIAL_RESPONSE = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: application/json\r\n"
    b"Content-Length: 100\r\n"
    b"Connection: keep-alive\r\n"
    b"\r\n"
    b"0123456789"  # 10 of the promised 100 bytes, then the drop
)
NO_LENGTH_RESPONSE = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: application/json\r\n"
    b"Connection: close\r\n"
    b"\r\n" + OK_BODY
)


class ScriptedServer:
    """A TCP server whose per-connection behaviour is a canned script.

    Behaviours:

    - ``"ok"``            answer every request on the connection
    - ``"ok-then-drop"``  answer the first request, close on the second
    - ``"drop"``          read the request, close without one response byte
    - ``"partial"``       send a truncated response, then close
    - ``"no-length"``     send a 2xx response without Content-Length
    """

    def __init__(self, script):
        self.script = list(script)
        self.connections_seen = 0
        self.requests_seen = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _read_request(self, connection) -> bool:
        """Consume one full request; False on EOF before any byte."""
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = connection.recv(65536)
            if not chunk:
                return False
            data += chunk
        head, _, rest = data.partition(b"\r\n\r\n")
        length = 0
        for line in head.split(b"\r\n")[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value.strip())
        while len(rest) < length:
            chunk = connection.recv(65536)
            if not chunk:
                return False
            rest += chunk
        self.requests_seen += 1
        return True

    def _serve(self) -> None:
        while self.script:
            behaviour = self.script.pop(0)
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return
            self.connections_seen += 1
            with connection:
                if behaviour == "ok":
                    while self._read_request(connection):
                        connection.sendall(OK_RESPONSE)
                elif behaviour == "ok-then-drop":
                    if self._read_request(connection):
                        connection.sendall(OK_RESPONSE)
                    self._read_request(connection)  # then drop it on the floor
                elif behaviour == "drop":
                    self._read_request(connection)
                elif behaviour == "partial":
                    if self._read_request(connection):
                        connection.sendall(PARTIAL_RESPONSE)
                elif behaviour == "no-length":
                    if self._read_request(connection):
                        connection.sendall(NO_LENGTH_RESPONSE)
        self._listener.close()

    def close(self) -> None:
        self._listener.close()


@pytest.fixture
def scripted():
    servers = []

    def start(*script):
        server = ScriptedServer(script)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.close()


# ---------------------------------------------------------------------------
# the synchronous client
# ---------------------------------------------------------------------------


class TestSyncReconnectMatrix:
    def test_fresh_connection_drop_is_fatal_no_retry(self, scripted):
        server = scripted("drop", "ok")  # a retry would find a healthy conn
        client = SyncServiceClient(port=server.port)
        with pytest.raises(BackendUnavailableError):
            client.request("GET", "/stats")
        assert server.connections_seen == 1  # the "ok" script never ran
        assert client.connections_opened == 0
        assert client.reuses == 0

    def test_stale_reused_connection_retries_exactly_once_and_succeeds(
        self, scripted
    ):
        server = scripted("ok-then-drop", "ok")
        client = SyncServiceClient(port=server.port)
        first = client.request("GET", "/stats")
        second = client.request("GET", "/stats")  # stale drop -> reconnect
        assert first["result"]["pong"] and second["result"]["pong"]
        assert client.connections_opened == 2
        assert client.reuses == 0  # both answers arrived on fresh conns
        assert server.connections_seen == 2
        assert server.requests_seen == 3  # the dropped re-send counts

    def test_stale_retry_that_also_drops_is_fatal(self, scripted):
        server = scripted("ok-then-drop", "drop", "ok")
        client = SyncServiceClient(port=server.port)
        client.request("GET", "/stats")
        with pytest.raises(BackendUnavailableError):
            client.request("GET", "/stats")
        assert server.connections_seen == 2  # one retry, never a second
        assert client.connections_opened == 1

    def test_mid_response_drop_is_fatal_and_never_redispatches(self, scripted):
        server = scripted("partial", "ok")
        client = SyncServiceClient(port=server.port)
        with pytest.raises(BackendUnavailableError, match="mid-response"):
            client.request("GET", "/stats")
        assert server.connections_seen == 1
        assert server.requests_seen == 1  # dispatched once, never again

    def test_reuse_counters_on_a_healthy_connection(self, scripted):
        server = scripted("ok")
        client = SyncServiceClient(port=server.port)
        for _ in range(3):
            assert client.request("GET", "/stats")["result"]["pong"]
        client.close()
        assert client.connections_opened == 1
        assert client.reuses == 2
        assert server.connections_seen == 1
        assert server.requests_seen == 3


# ---------------------------------------------------------------------------
# the asyncio client
# ---------------------------------------------------------------------------


def _async_requests(port, n):
    """Run n sequential requests on one ServiceClient; return outcomes."""

    async def run():
        outcomes = []
        async with ServiceClient("127.0.0.1", port) as client:
            for _ in range(n):
                try:
                    outcomes.append(await client.request("GET", "/stats"))
                except Exception as exc:
                    outcomes.append(exc)
            return outcomes, client.connections_opened, client.reuses

    return asyncio.run(run())


class TestAsyncReconnectMatrix:
    def test_fresh_connection_drop_is_fatal_no_retry(self, scripted):
        server = scripted("drop", "ok")
        outcomes, opened, reuses = _async_requests(server.port, 1)
        assert isinstance(outcomes[0], BackendUnavailableError)
        assert server.connections_seen == 1
        assert (opened, reuses) == (1, 0)  # opened, but never answered

    def test_stale_reused_connection_retries_exactly_once_and_succeeds(
        self, scripted
    ):
        server = scripted("ok-then-drop", "ok")
        outcomes, opened, reuses = _async_requests(server.port, 2)
        assert all(o["result"]["pong"] for o in outcomes)
        assert opened == 2
        assert reuses == 0
        assert server.connections_seen == 2
        assert server.requests_seen == 3

    def test_stale_retry_that_also_drops_is_fatal(self, scripted):
        server = scripted("ok-then-drop", "drop", "ok")
        outcomes, opened, _ = _async_requests(server.port, 2)
        assert outcomes[0]["result"]["pong"]
        assert isinstance(outcomes[1], BackendUnavailableError)
        assert server.connections_seen == 2
        assert opened == 2

    def test_mid_response_drop_is_fatal_and_never_redispatches(self, scripted):
        server = scripted("partial", "ok")
        outcomes, _, _ = _async_requests(server.port, 1)
        assert isinstance(outcomes[0], BackendUnavailableError)
        assert "mid-response" in str(outcomes[0])
        assert server.connections_seen == 1
        assert server.requests_seen == 1

    def test_reuse_counters_on_a_healthy_connection(self, scripted):
        server = scripted("ok")
        outcomes, opened, reuses = _async_requests(server.port, 3)
        assert all(o["result"]["pong"] for o in outcomes)
        assert (opened, reuses) == (1, 2)
        assert server.requests_seen == 3


# ---------------------------------------------------------------------------
# malformed 2xx responses (the silent empty-body regression)
# ---------------------------------------------------------------------------


class TestMalformedResponses:
    def test_2xx_without_content_length_is_a_structured_502(self, scripted):
        """The async client must not read a missing body as ``{}``."""
        server = scripted("no-length")
        outcomes, _, _ = _async_requests(server.port, 1)
        error = outcomes[0]
        assert isinstance(error, ServiceError), error
        assert error.status == 502
        assert error.code == "bad-response"
        assert "Content-Length" in str(error)
        assert server.requests_seen == 1  # structured failure, no retry

    def test_error_response_without_content_length_keeps_old_semantics(self):
        """Non-2xx without Content-Length still maps to a service error
        (read as an empty error payload), not to the 502 framing error."""

        async def run():
            async def handler(reader, writer):
                await reader.readline()
                while (await reader.readline()).strip():
                    pass
                writer.write(
                    b"HTTP/1.1 503 Unavailable\r\nConnection: close\r\n\r\n"
                )
                await writer.drain()
                writer.close()

            inline = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = inline.sockets[0].getsockname()[1]
            try:
                async with ServiceClient("127.0.0.1", port) as client:
                    with pytest.raises(ServiceError) as excinfo:
                        await client.request("GET", "/stats")
                    return excinfo.value
            finally:
                inline.close()
                await inline.wait_closed()

        error = asyncio.run(run())
        assert error.code == "internal"  # empty error payload, not framing


# ---------------------------------------------------------------------------
# the one-shot request_json helper (the socket-leak regression)
# ---------------------------------------------------------------------------


class _RecordingConnection(http.client.HTTPConnection):
    """HTTPConnection that counts ``close()`` calls per instance."""

    instances = []

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.close_calls = 0
        _RecordingConnection.instances.append(self)

    def close(self):
        self.close_calls += 1
        super().close()


@pytest.fixture
def recorded_connections(monkeypatch):
    _RecordingConnection.instances = []
    monkeypatch.setattr(http.client, "HTTPConnection", _RecordingConnection)
    return _RecordingConnection.instances


class TestRequestJsonClosesOnEveryExit:
    """``request_json`` promises the connection is closed on *every*
    exit path — success, connect refusal, and a server that drops the
    socket before one response byte — so scripts hammering the helper
    in a loop can never leak sockets (the contract its docstring pins).
    """

    def test_success_path_closes(self, scripted, recorded_connections):
        server = scripted("ok")
        status, body = request_json(
            "127.0.0.1", server.port, "GET", "/stats"
        )
        assert status == 200
        assert body["result"]["pong"]
        (connection,) = recorded_connections
        assert connection.close_calls >= 1

    def test_connection_refused_closes(self, recorded_connections):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        vacant_port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        with pytest.raises(OSError):
            request_json("127.0.0.1", vacant_port, "GET", "/stats",
                         timeout=2.0)
        (connection,) = recorded_connections
        assert connection.close_calls >= 1

    def test_drop_before_response_closes(self, scripted,
                                         recorded_connections):
        server = scripted("drop")  # reads the request, then hangs up
        with pytest.raises((http.client.HTTPException, OSError)):
            request_json("127.0.0.1", server.port, "GET", "/stats",
                         timeout=2.0)
        assert server.requests_seen == 1  # dispatched, then dropped
        (connection,) = recorded_connections
        assert connection.close_calls >= 1
