"""Tests for the GPU baseline performance model."""

import numpy as np
import pytest

from repro.apps.params import APP_NAMES, ENCODING_SCHEMES, get_config
from repro.calibration import fitted, paper
from repro.gpu import (
    RTX3090,
    GPUSpec,
    baseline_frame_time_ms,
    baseline_kernel_times_ms,
    build_kernel_trace,
    performance_gap,
)
from repro.gpu.baseline import FHD_PIXELS, achieved_fps
from repro.gpu.kernels import (
    KernelLaunch,
    encoding_workload_per_sample,
    mlp_workload_per_sample,
    samples_per_frame,
)
from repro.gpu.profiler import (
    kernel_breakdown,
    kernel_breakdown_averages,
    memory_bound_fraction,
    op_breakdown,
    utilization_rows,
    OP_NAMES,
)
from repro.gpu.roofline import kernel_time_ms, roofline_time_ms, trace_time_ms


class TestDevice:
    def test_rtx3090_headline_specs(self):
        assert RTX3090.mem_bandwidth_gbps == pytest.approx(936.2)
        assert RTX3090.die_area_mm2 == pytest.approx(628.4)
        assert RTX3090.sm_count == 82

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUSpec("bad", 0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)


class TestBaselineTimes:
    def test_fhd_hashgrid_matches_paper(self):
        for app, expected in paper.BASELINE_FHD_MS.items():
            assert baseline_frame_time_ms(app, "multi_res_hashgrid") == pytest.approx(
                expected
            )

    def test_times_scale_linearly_with_pixels(self):
        t1 = baseline_frame_time_ms("nerf", "multi_res_hashgrid", FHD_PIXELS)
        t2 = baseline_frame_time_ms("nerf", "multi_res_hashgrid", 2 * FHD_PIXELS)
        assert t2 == pytest.approx(2 * t1)

    def test_densegrid_faster_than_hashgrid(self):
        """Cheaper encodings shorten the frame; rest time is unchanged."""
        for app in APP_NAMES:
            hash_t = baseline_frame_time_ms(app, "multi_res_hashgrid")
            dense_t = baseline_frame_time_ms(app, "multi_res_densegrid")
            assert dense_t < hash_t
            hash_rest = baseline_kernel_times_ms(app, "multi_res_hashgrid")["rest"]
            dense_rest = baseline_kernel_times_ms(app, "multi_res_densegrid")["rest"]
            assert dense_rest == pytest.approx(hash_rest, rel=1e-9)

    def test_kernel_times_sum_to_total(self):
        for app in APP_NAMES:
            for scheme in ENCODING_SCHEMES:
                times = baseline_kernel_times_ms(app, scheme)
                assert times["encoding"] + times["mlp"] + times["rest"] == pytest.approx(
                    times["total"]
                )

    def test_validation(self):
        with pytest.raises(ValueError):
            baseline_frame_time_ms("dlss", "multi_res_hashgrid")
        with pytest.raises(ValueError):
            baseline_frame_time_ms("nerf", "fourier")
        with pytest.raises(ValueError):
            baseline_frame_time_ms("nerf", "multi_res_hashgrid", 0)


class TestPerformanceGap:
    def test_headline_gaps(self):
        """Section III: 55.50x / 6.68x / 1.51x at 4K 60 FPS; GIA meets it."""
        assert performance_gap("nerf") == pytest.approx(55.50, rel=0.01)
        assert performance_gap("nsdf") == pytest.approx(6.68, rel=0.01)
        assert performance_gap("nvr") == pytest.approx(1.51, rel=0.01)
        assert performance_gap("gia") < 1.0

    def test_gap_grows_with_fps(self):
        assert performance_gap("nerf", fps=120) == pytest.approx(
            2 * performance_gap("nerf", fps=60)
        )

    def test_achieved_fps_consistency(self):
        fps = achieved_fps("gia", "multi_res_hashgrid", FHD_PIXELS)
        assert fps == pytest.approx(1000.0 / 2.12)


class TestKernelWorkloads:
    def test_samples_per_frame(self):
        config = get_config("gia", "multi_res_hashgrid")
        assert samples_per_frame(config, 1000) == 1000  # GIA: 1 sample/pixel
        nerf = get_config("nerf", "multi_res_hashgrid")
        assert samples_per_frame(nerf, 1000) == 1000 * fitted.SAMPLES_PER_PIXEL["nerf"]

    def test_encoding_workload_scales_with_levels(self):
        hash16 = encoding_workload_per_sample(get_config("nerf", "multi_res_hashgrid"))
        lrdg2 = encoding_workload_per_sample(get_config("nerf", "low_res_densegrid"))
        assert hash16[0] > lrdg2[0]  # 16 levels cost more flops than 2
        assert hash16[1] > lrdg2[1]

    def test_mlp_workload_matches_spec(self):
        config = get_config("nsdf", "multi_res_hashgrid")
        flops, _ = mlp_workload_per_sample(config)
        assert flops == config.mlps[0].flops_per_input

    def test_trace_structure(self):
        config = get_config("nerf", "multi_res_hashgrid")
        trace = build_kernel_trace(config, FHD_PIXELS)
        kinds = sorted(l.kind for l in trace.launches)
        assert kinds == ["encoding", "mlp", "rest"]
        assert trace.calls("encoding") == 59  # Table II
        assert trace.calls("mlp") == 118

    def test_kernel_launch_validation(self):
        with pytest.raises(ValueError):
            KernelLaunch("x", "unknown", 1.0, 1.0)
        with pytest.raises(ValueError):
            KernelLaunch("x", "mlp", -1.0, 1.0)


class TestRoofline:
    def test_compute_vs_memory_bound(self):
        # 1 TFLOP at 71 TFLOPS ~ 14 ms; 1 GB at 936 GB/s ~ 1.07 ms
        t_compute = roofline_time_ms(1e12, 1e3, RTX3090)
        t_memory = roofline_time_ms(1e3, 1e9, RTX3090)
        assert t_compute == pytest.approx(1e12 / 71e12 * 1e3, rel=1e-6)
        assert t_memory == pytest.approx(1e9 / 936.2e9 * 1e3, rel=1e-6)

    def test_utilization_slows_kernels(self):
        fast = roofline_time_ms(1e12, 1e6, RTX3090, compute_util=1.0)
        slow = roofline_time_ms(1e12, 1e6, RTX3090, compute_util=0.5)
        assert slow == pytest.approx(2 * fast)

    def test_validation(self):
        with pytest.raises(ValueError):
            roofline_time_ms(1.0, 1.0, RTX3090, compute_util=0.0)
        with pytest.raises(ValueError):
            roofline_time_ms(-1.0, 1.0, RTX3090)

    def test_trace_time_within_order_of_magnitude_of_paper(self):
        """The mechanistic roofline should land near the measured total."""
        config = get_config("nerf", "multi_res_hashgrid")
        times = trace_time_ms(build_kernel_trace(config, FHD_PIXELS))
        assert 231.0 / 5 < times["total"] < 231.0 * 5

    def test_launch_overhead_counted(self):
        config = get_config("nsdf", "multi_res_hashgrid")
        trace = build_kernel_trace(config, FHD_PIXELS)
        launch = trace.launches[0]
        t = kernel_time_ms(launch, trace)
        assert t > launch.calls * RTX3090.kernel_launch_overhead_us * 1e-3


class TestProfiler:
    def test_breakdown_matches_fitted_fractions(self):
        b = kernel_breakdown("nerf", "multi_res_hashgrid")
        assert b["encoding"] == pytest.approx(43.0)
        assert sum(b.values()) == pytest.approx(100.0)

    def test_breakdown_averages_match_paper(self):
        """The Fig. 5 text: 40.24/32.12, 24.63/35.37, 24.15/35.37."""
        for scheme, targets in paper.FIG5_AVERAGE_FRACTIONS.items():
            avg = kernel_breakdown_averages(scheme)
            assert avg["encoding"] == pytest.approx(targets["encoding"], abs=0.02)
            assert avg["mlp"] == pytest.approx(targets["mlp"], abs=0.02)

    def test_unknown_keys_raise(self):
        with pytest.raises(KeyError):
            kernel_breakdown("nerf", "fourier")
        with pytest.raises(KeyError):
            kernel_breakdown_averages("fourier")
        with pytest.raises(KeyError):
            op_breakdown("fourier")

    def test_op_breakdown_hash_only_for_hashgrid(self):
        """Fig. 8: zero hash cycles for the dense schemes."""
        assert op_breakdown("multi_res_hashgrid")["hash_function"] > 0
        assert op_breakdown("multi_res_densegrid")["hash_function"] == 0
        assert op_breakdown("low_res_densegrid")["hash_function"] == 0

    def test_op_breakdown_lookups_dominate(self):
        """Section IV: grid lookups take the most cycles in every scheme."""
        for scheme in ENCODING_SCHEMES:
            b = op_breakdown(scheme)
            assert b["grid_lookups"] == max(b.values())
            assert sum(b.values()) == pytest.approx(100.0)
            assert set(b) == set(OP_NAMES)

    def test_utilization_rows_complete(self):
        rows = utilization_rows()
        assert len(rows) == 24  # 4 apps x 3 schemes x 2 kernels
        nerf_enc = next(
            r
            for r in rows
            if r["app"] == "nerf"
            and r["scheme"] == "multi_res_hashgrid"
            and r["kernel"] == "encoding"
        )
        assert nerf_enc["kernel_calls"] == 59
        assert nerf_enc["memory_util_pct"] == pytest.approx(72.85)

    def test_memory_bound_on_average(self):
        """Section IV: memory utilization exceeds compute for most kernels."""
        assert memory_bound_fraction("multi_res_hashgrid") >= 0.5
