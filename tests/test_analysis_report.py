"""Tests for the markdown report builder and remaining small utilities."""

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentRow
from repro.analysis.report import (
    build_markdown,
    design_space_section,
    rows_to_markdown,
    sensitivity_section,
)
from repro.utils.rng import resolve_seed


class TestRowsToMarkdown:
    def test_with_and_without_reported(self):
        rows = [
            ExperimentRow("a", 1.0, 2.0),
            ExperimentRow("b", 3.0, None),
        ]
        lines = rows_to_markdown(rows)
        assert lines[0].startswith("| quantity")
        assert "| a | 1 | 2 | -50.0% |" in lines
        assert "| b | 3 | n/a | — |" in lines


class TestSections:
    def test_sensitivity_section_structure(self):
        lines = sensitivity_section()
        assert any("dma_overhead" in line for line in lines)
        assert any("rest_fraction" in line for line in lines)

    def test_design_space_section_structure(self):
        lines = design_space_section()
        assert any("NGPC-8" in line for line in lines)
        assert any("NGPC-64" in line for line in lines)


class TestBuildMarkdown:
    def test_full_report(self):
        text = build_markdown(header="# Test report\n")
        assert text.startswith("# Test report")
        assert "## fig12" in text
        assert "Sensitivity" in text
        assert "Design space" in text

    def test_sections_optional(self):
        text = build_markdown(
            include_sensitivity=False, include_design_space=False
        )
        assert "Sensitivity" not in text
        assert "Design space" not in text

    def test_cli_report_to_file(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "r.md")
        assert main(["report", "--output", path]) == 0
        with open(path) as f:
            assert "## fig15" in f.read()


class TestResolveSeed:
    def test_none_uses_default(self):
        a = resolve_seed(None).integers(0, 10**9)
        b = resolve_seed(None).integers(0, 10**9)
        assert a == b

    def test_explicit_seed(self):
        a = resolve_seed(5).integers(0, 10**9)
        b = resolve_seed(5).integers(0, 10**9)
        assert a == b

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert resolve_seed(g) is g
