"""Tests for fixed-function encodings and the composite encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encodings import (
    CompositeEncoding,
    FrequencyEncoding,
    IdentityEncoding,
    OneBlobEncoding,
    SphericalHarmonicsEncoding,
)
from repro.encodings.grids import HashGridEncoding


class TestIdentity:
    def test_passthrough(self, unit_points_3d):
        enc = IdentityEncoding(3)
        np.testing.assert_array_equal(enc.forward(unit_points_3d), unit_points_3d)

    def test_backward_passes_gradient(self, unit_points_3d):
        enc = IdentityEncoding(3)
        dy = np.ones_like(unit_points_3d)
        np.testing.assert_array_equal(enc.backward(dy).input_grad, dy)


class TestFrequency:
    def test_output_dim(self):
        enc = FrequencyEncoding(3, num_frequencies=10)
        assert enc.output_dim == 60  # vanilla NeRF positional encoding width

    def test_values_bounded(self, unit_points_3d):
        out = FrequencyEncoding(3, 6).forward(unit_points_3d)
        assert np.all(np.abs(out) <= 1.0 + 1e-6)

    def test_first_octave_is_sin_pi_x(self):
        enc = FrequencyEncoding(1, 2)
        x = np.array([[0.25]], dtype=np.float32)
        out = enc.forward(x)
        assert out[0, 0] == pytest.approx(np.sin(np.pi * 0.25), rel=1e-5)
        assert out[0, 2] == pytest.approx(np.cos(np.pi * 0.25), rel=1e-5)

    def test_backward_matches_finite_differences(self):
        enc = FrequencyEncoding(2, 4)
        x = np.array([[0.3, 0.7]], dtype=np.float64)
        out = enc.forward(x, cache=True)
        dy = np.ones_like(out)
        grad = enc.backward(dy).input_grad
        # the encoding computes in float32, so use a coarse probe step
        eps = 1e-3
        for j in range(2):
            xp, xm = x.copy(), x.copy()
            xp[0, j] += eps
            xm[0, j] -= eps
            numeric = (
                enc.forward(xp).astype(np.float64).sum()
                - enc.forward(xm).astype(np.float64).sum()
            ) / (2 * eps)
            assert grad[0, j] == pytest.approx(numeric, rel=2e-2)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            FrequencyEncoding(0, 4)
        with pytest.raises(ValueError):
            FrequencyEncoding(3, 0)


class TestOneBlob:
    def test_shape_and_range(self, unit_points_2d):
        enc = OneBlobEncoding(2, bins=16)
        out = enc.forward(unit_points_2d)
        assert out.shape == (unit_points_2d.shape[0], 32)
        assert np.all((out >= 0) & (out <= 1))

    def test_peak_at_own_bin(self):
        enc = OneBlobEncoding(1, bins=8)
        x = np.array([[(3 + 0.5) / 8]], dtype=np.float32)  # center of bin 3
        out = enc.forward(x)
        assert int(np.argmax(out[0])) == 3

    def test_backward_matches_finite_differences(self):
        enc = OneBlobEncoding(1, bins=4)
        x = np.array([[0.4]], dtype=np.float64)
        out = enc.forward(x, cache=True)
        grad = enc.backward(np.ones_like(out)).input_grad
        # the encoding computes in float32, so use a coarse probe step
        eps = 1e-3
        numeric = (
            enc.forward(x + eps).astype(np.float64).sum()
            - enc.forward(x - eps).astype(np.float64).sum()
        ) / (2 * eps)
        assert grad[0, 0] == pytest.approx(numeric, rel=2e-2)


class TestSphericalHarmonics:
    def test_output_dims(self):
        for degree in (1, 2, 3, 4):
            assert SphericalHarmonicsEncoding(degree).output_dim == degree * degree

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            SphericalHarmonicsEncoding(0)
        with pytest.raises(ValueError):
            SphericalHarmonicsEncoding(5)

    def test_rejects_zero_vector(self):
        with pytest.raises(ValueError):
            SphericalHarmonicsEncoding(2).forward(np.zeros((1, 3)))

    def test_dc_term_constant(self, rng):
        dirs = rng.normal(size=(32, 3))
        out = SphericalHarmonicsEncoding(4).forward(dirs)
        np.testing.assert_allclose(out[:, 0], 0.28209479177387814, rtol=1e-6)

    @given(st.floats(-1, 1), st.floats(-1, 1), st.floats(-1, 1))
    @settings(max_examples=30)
    def test_orthonormality_sampled(self, x, y, z):
        """SH values stay bounded for any direction."""
        v = np.array([[x, y, z]])
        if np.linalg.norm(v) < 1e-3:
            return
        out = SphericalHarmonicsEncoding(4).forward(v)
        assert np.all(np.abs(out) < 3.0)

    def test_degree2_matches_direction_components(self):
        enc = SphericalHarmonicsEncoding(2)
        v = np.array([[0.0, 0.0, 1.0]])
        out = enc.forward(v)
        assert out[0, 2] == pytest.approx(0.48860251190291987)
        assert out[0, 1] == pytest.approx(0.0, abs=1e-7)


class TestComposite:
    def make(self):
        grid = HashGridEncoding(
            3, n_levels=4, n_features=2, log2_table_size=10,
            base_resolution=4, growth_factor=1.5, seed=0,
        )
        sh = SphericalHarmonicsEncoding(4)
        return CompositeEncoding([(grid, 3), (sh, 3)]), grid, sh

    def test_dims(self):
        comp, grid, sh = self.make()
        assert comp.input_dim == 6
        assert comp.output_dim == grid.output_dim + sh.output_dim

    def test_forward_concatenates(self, rng):
        comp, grid, sh = self.make()
        pos = rng.uniform(0, 1, size=(8, 3)).astype(np.float32)
        dirs = rng.normal(size=(8, 3)).astype(np.float32)
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        x = np.concatenate([pos, dirs], axis=1)
        out = comp.forward(x)
        np.testing.assert_allclose(out[:, : grid.output_dim], grid.forward(pos))
        np.testing.assert_allclose(out[:, grid.output_dim :], sh.forward(dirs))

    def test_backward_routes_param_grads(self, rng):
        comp, grid, sh = self.make()
        pos = rng.uniform(0, 1, size=(8, 3)).astype(np.float32)
        dirs = np.tile([[0.0, 0.0, 1.0]], (8, 1)).astype(np.float32)
        x = np.concatenate([pos, dirs], axis=1)
        out = comp.forward(x, cache=True)
        grads = comp.backward(np.ones_like(out))
        assert len(grads.param_grads) == len(grid.parameters())
        assert any(np.any(g != 0) for g in grads.param_grads)

    def test_mismatched_slice_raises(self):
        sh = SphericalHarmonicsEncoding(2)
        with pytest.raises(ValueError):
            CompositeEncoding([(sh, 2)])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            CompositeEncoding([])

    def test_parameters_collects_children(self):
        comp, grid, _ = self.make()
        assert len(comp.parameters()) == len(grid.parameters())
