"""Tests for the analytic input Jacobian of grid encodings and the
NSDF gradient/normal machinery built on it."""

import numpy as np
import pytest

from repro.apps import NSDFApp
from repro.apps.params import get_config
from repro.encodings import DenseGridEncoding, HashGridEncoding, TiledGridEncoding


def _filled(enc, seed=1):
    rng = np.random.default_rng(seed)
    for t in enc.tables:
        t[...] = rng.uniform(-1, 1, t.shape)
    return enc


@pytest.mark.parametrize(
    "enc_factory",
    [
        lambda: DenseGridEncoding(
            3, n_levels=2, n_features=2, base_resolution=4, growth_factor=2.0, seed=0
        ),
        lambda: HashGridEncoding(
            3, n_levels=3, n_features=2, log2_table_size=8,
            base_resolution=4, growth_factor=1.6, seed=0,
        ),
        lambda: TiledGridEncoding(
            2, n_levels=2, n_features=4, base_resolution=6, growth_factor=1.0, seed=0
        ),
    ],
    ids=["dense3d", "hash3d", "tiled2d"],
)
class TestInputJacobian:
    def test_matches_finite_differences(self, enc_factory):
        enc = _filled(enc_factory())
        rng = np.random.default_rng(2)
        # stay away from cell boundaries of the finest level
        pts = rng.uniform(0.11, 0.87, size=(4, enc.input_dim)).astype(np.float32)
        jac = enc.input_jacobian(pts)
        assert jac.shape == (4, enc.output_dim, enc.input_dim)
        eps = 1e-4
        for dim in range(enc.input_dim):
            delta = np.zeros(enc.input_dim)
            delta[dim] = eps
            numeric = (
                enc.forward(pts + delta).astype(np.float64)
                - enc.forward(pts - delta).astype(np.float64)
            ) / (2 * eps)
            np.testing.assert_allclose(
                jac[:, :, dim], numeric, atol=5e-3 * max(1.0, np.abs(numeric).max())
            )

    def test_zero_for_constant_tables(self, enc_factory):
        enc = enc_factory()
        for t in enc.tables:
            t[...] = 0.75
        pts = np.full((2, enc.input_dim), 0.4, dtype=np.float32)
        jac = enc.input_jacobian(pts)
        np.testing.assert_allclose(jac, 0.0, atol=1e-5)

    def test_scales_with_level_resolution(self, enc_factory):
        """Finer levels contribute steeper gradients (x scale)."""
        enc = _filled(enc_factory())
        pts = np.array([[0.37] * enc.input_dim], dtype=np.float32)
        jac = enc.input_jacobian(pts)
        per_level = [
            np.abs(jac[0, l * enc.n_features : (l + 1) * enc.n_features]).max()
            for l in range(enc.n_levels)
        ]
        # not strictly monotone (features are random) but the expected
        # magnitude grows with resolution; check the bound holds
        for l in range(enc.n_levels):
            assert per_level[l] <= 2.0 * enc.level_resolution(l) * enc.input_dim


class TestNSDFGradients:
    @pytest.fixture(scope="class")
    def coarse_app(self):
        """An NSDF app whose finest grid cell is resolvable by eps=1e-3."""
        config = get_config("nsdf", "multi_res_hashgrid").with_grid_overrides(
            n_levels=4, growth_factor=1.4, n_min=4
        )
        app = NSDFApp(config=config, seed=0)
        app.train(steps=60, batch_size=1024)
        return app

    def test_gradient_matches_finite_differences(self, coarse_app):
        rng = np.random.default_rng(5)
        pts = rng.uniform(-0.35, 0.35, size=(6, 3)).astype(np.float32)
        grad = coarse_app.gradient(pts)
        eps = 1e-3
        for dim in range(3):
            delta = np.zeros(3, dtype=np.float32)
            delta[dim] = eps
            numeric = (
                coarse_app.predict(pts + delta) - coarse_app.predict(pts - delta)
            ) / (2 * eps)
            scale = max(1.0, float(np.abs(numeric).max()))
            np.testing.assert_allclose(grad[:, dim], numeric, atol=0.05 * scale)

    def test_normals_unit_length(self, coarse_app):
        pts = np.random.default_rng(1).uniform(-0.3, 0.3, (16, 3)).astype(np.float32)
        normals = coarse_app.normals(pts)
        np.testing.assert_allclose(np.linalg.norm(normals, axis=1), 1.0, rtol=1e-5)

    def test_trained_sdf_gradient_points_outward(self, coarse_app):
        """Near a learned surface, the gradient aligns with the true normal."""
        from repro.graphics import sdf_normal

        rng = np.random.default_rng(7)
        pts = rng.uniform(-0.3, 0.3, size=(64, 3))
        truth = sdf_normal(coarse_app.scene, pts)
        learned = coarse_app.normals(pts.astype(np.float32))
        cosine = (truth * learned).sum(axis=1)
        assert np.median(cosine) > 0.7

    def test_eikonal_metric_finite(self, coarse_app):
        value = coarse_app.evaluate_eikonal(n_points=256)
        assert np.isfinite(value)
        assert value >= 0.0
