"""End-to-end harness for the multi-tenant service ops layer.

The acceptance surface of the operations layer:

- **Auth**: with a tenants file, a missing key is a structured 401
  (plus ``WWW-Authenticate: Bearer``), an unknown key a 403, and a
  valid key resolves the tenant; ``/healthz`` and ``/metrics`` stay
  reachable for probes and scrapers.
- **Hot reload**: editing the tenants file rotates keys and admission
  limits without a restart; a malformed edit keeps the previous config
  live instead of taking auth down.
- **Quotas**: per-tenant token buckets answer 429 ``rate-limited``
  with a computed ``Retry-After``; the global cold-sweep cap queues a
  burst and 429s (``overloaded``) beyond the bounded queue — while a
  second tenant's cached queries stay fast.
- **Fidelity**: sweep results served through auth + admission are
  bit-identical to the anonymous path.
- **Observability**: ``GET /metrics`` renders Prometheus text 0.0.4
  with per-tenant counters and latency histograms; the access log is
  one JSON object per line.
- **Rolling restarts**: ``POST /cluster/drain`` bumps the worker
  generation mid-sweep; old workers stop at their next poll, their
  in-flight completions still count, and the sweep finishes exactly.

No pytest-asyncio in the image: each test drives its own event loop via
``asyncio.run`` (which also exercises the admission controller's
loop-turnover reset).
"""

import asyncio
import io
import json
import os
import threading
import time

import numpy as np
import pytest

from repro.core.dse import SweepGrid, sweep_grid
from repro.gpu.baseline import FHD_PIXELS
from repro.service import (
    OpsLayer,
    ServiceClient,
    ServiceError,
    SweepService,
    request_json,
    start_http_server,
)
from repro.service.ops import ANONYMOUS
from repro.service.ops.admission import AdmissionController, TokenBucket
from repro.service.ops.logging import JsonLogger
from repro.service.ops.tenants import Tenant, TenantRegistry

RTOL = 1e-9

SMALL_GRID = SweepGrid(apps=("nerf",), scale_factors=(8, 16, 32, 64))

TENANTS = {
    "tenants": [
        {"name": "ops", "key": "ak-ops", "admin": True},
        {"name": "acme", "key": "ak-acme", "rate_per_s": 1000.0},
        {"name": "slow", "key": "ak-slow", "rate_per_s": 1.0, "burst": 1},
    ]
}


def write_tenants(path, config=TENANTS):
    path.write_text(json.dumps(config))
    return str(path)


async def raw_request(port, method, path, api_key=None, payload=None):
    """One raw HTTP exchange returning (status, headers, body bytes).

    The typed clients hide response headers; the 401/429 contracts
    (``WWW-Authenticate``, ``Retry-After``) need the raw wire.
    """
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (f"{method} {path} HTTP/1.1\r\nHost: localhost\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\nConnection: close\r\n")
        if api_key is not None:
            head += f"Authorization: Bearer {api_key}\r\n"
        writer.write(head.encode() + b"\r\n" + body)
        await writer.drain()
        blob = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    header_blob, _, rest = blob.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding") == "chunked":  # not used by JSON
        raise AssertionError("unexpected chunked response")
    return status, headers, rest


# ---------------------------------------------------------------------------
# unit: token bucket + admission controller
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate_per_s=1000.0, burst=3)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_acquire()
        assert 0.0 < wait <= 1.0 / 1000.0 + 1e-6
        time.sleep(wait + 0.002)
        assert bucket.try_acquire() == 0.0


class TestAdmissionController:
    def test_rate_limit_is_structured_with_retry_hint(self):
        controller = AdmissionController()
        tenant = Tenant(name="t", rate_per_s=2.0, burst=2)
        controller.check_rate(tenant)
        controller.check_rate(tenant)
        with pytest.raises(ServiceError) as excinfo:
            controller.check_rate(tenant)
        error = excinfo.value
        assert error.status == 429
        assert error.code == "rate-limited"
        assert error.details["tenant"] == "t"
        assert 0.0 < error.details["retry_after_s"] <= 0.5
        assert controller.rate_limited == 1
        # unlimited tenants never hit the bucket
        for _ in range(100):
            controller.check_rate(ANONYMOUS)

    def test_cold_cap_queues_then_rejects_then_hands_over(self):
        async def run():
            controller = AdmissionController(
                max_cold_sweeps=1, cold_queue_depth=1
            )
            first = await controller.acquire_cold()
            assert first.queued is False  # fast path never yielded
            queued_task = asyncio.ensure_future(controller.acquire_cold())
            await asyncio.sleep(0)  # the waiter is parked in the queue
            assert not queued_task.done()
            with pytest.raises(ServiceError) as excinfo:
                await controller.acquire_cold()  # queue full -> 429
            assert excinfo.value.code == "overloaded"
            assert excinfo.value.details["retry_after_s"] == 1.0
            first()
            first()  # idempotent
            second = await queued_task  # slot handed over, not dropped
            assert second.queued is True
            assert controller.stats()["cold_active"] == 1
            second()
            assert controller.stats() == {
                "max_cold_sweeps": 1, "cold_queue_depth": 1,
                "cold_active": 0, "cold_waiting": 0,
                "cold_admitted": 2, "cold_queued": 1,
                "rate_limited": 0, "overloaded": 1,
            }

        asyncio.run(run())

    def test_uncapped_controller_is_a_noop(self):
        async def run():
            controller = AdmissionController(max_cold_sweeps=None)
            releases = [await controller.acquire_cold() for _ in range(64)]
            assert all(r.queued is False for r in releases)
            for release in releases:
                release()
            assert controller.stats()["cold_active"] == 0

        asyncio.run(run())

    def test_raised_cap_wakes_queued_waiters(self):
        async def run():
            controller = AdmissionController(
                max_cold_sweeps=1, cold_queue_depth=4
            )
            hold = await controller.acquire_cold()
            waiting = asyncio.ensure_future(controller.acquire_cold())
            await asyncio.sleep(0)
            assert not waiting.done()
            controller.configure(max_cold_sweeps=2)  # hot-reloaded limit
            release = await asyncio.wait_for(waiting, timeout=1.0)
            release()
            hold()

        asyncio.run(run())


# ---------------------------------------------------------------------------
# unit: tenant registry (parse, auth split, hot reload)
# ---------------------------------------------------------------------------


class TestTenantRegistry:
    def test_authenticate_splits_401_and_403(self, tmp_path):
        registry = TenantRegistry(write_tenants(tmp_path / "tenants.json"))
        assert len(registry) == 3
        tenant = registry.authenticate("Bearer ak-acme")
        assert tenant.name == "acme" and tenant.admin is False
        assert registry.authenticate("Bearer ak-ops").admin is True
        for bad in (None, "", "Basic dXNlcg==", "Bearer "):
            with pytest.raises(ServiceError) as excinfo:
                registry.authenticate(bad)
            assert excinfo.value.status == 401
            assert excinfo.value.code == "unauthenticated"
        with pytest.raises(ServiceError) as excinfo:
            registry.authenticate("Bearer wrong-key")
        assert excinfo.value.status == 403
        assert excinfo.value.code == "forbidden"
        assert registry.auth_failures == 5

    def test_malformed_files_fail_fast_at_startup(self, tmp_path):
        cases = [
            {"tenants": []},
            {"tenants": [{"name": "a"}]},  # no key
            {"tenants": [{"name": "a", "key": "k"},
                         {"name": "a", "key": "k2"}]},  # dup name
            {"tenants": [{"name": "a", "key": "k"},
                         {"name": "b", "key": "k"}]},  # dup key
            {"tenants": [{"name": "a", "key": "k", "rate_per_s": -1}]},
            {"tenants": [{"name": "a", "key": "k"}],
             "limits": {"bogus": 1}},
        ]
        for index, config in enumerate(cases):
            path = tmp_path / f"bad{index}.json"
            with pytest.raises(ValueError):
                TenantRegistry(write_tenants(path, config))

    def test_mtime_poll_rotates_keys(self, tmp_path):
        path = tmp_path / "tenants.json"
        registry = TenantRegistry(write_tenants(path), poll_interval_s=0.0)
        rotated = {"tenants": [{"name": "acme", "key": "ak-rotated"}]}
        write_tenants(path, rotated)
        # force a distinct mtime even on coarse-grained filesystems
        os.utime(path, (time.time() + 2, time.time() + 2))
        assert registry.authenticate("Bearer ak-rotated").name == "acme"
        with pytest.raises(ServiceError):  # the old key is gone
            registry.authenticate("Bearer ak-acme")
        assert registry.reloads == 1 and registry.generation == 2

    def test_broken_reload_keeps_previous_config(self, tmp_path):
        path = tmp_path / "tenants.json"
        registry = TenantRegistry(write_tenants(path))
        path.write_text("{not json")
        registry.reload()
        assert registry.load_errors == 1
        assert registry.authenticate("Bearer ak-acme").name == "acme"
        # and a later good edit goes live again
        write_tenants(path, {"tenants": [{"name": "x", "key": "ak-x"}]})
        registry.reload()
        assert registry.authenticate("Bearer ak-x").name == "x"


class TestOpsLimits:
    def test_tenants_file_limits_override_and_fall_back(self, tmp_path):
        path = tmp_path / "tenants.json"
        config = dict(TENANTS, limits={"max_cold_sweeps": 2,
                                       "cold_queue_depth": 3})
        ops = OpsLayer(tenants_path=write_tenants(path, config),
                       max_cold_sweeps=8, cold_queue_depth=16)
        assert ops.admission.max_cold_sweeps == 2
        assert ops.admission.cold_queue_depth == 3
        write_tenants(path, TENANTS)  # the limits section is dropped
        ops.reload()
        # back to the CLI-level caps
        assert ops.admission.max_cold_sweeps == 8
        assert ops.admission.cold_queue_depth == 16


# ---------------------------------------------------------------------------
# unit: structured JSON logging
# ---------------------------------------------------------------------------


class TestJsonLogger:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream, service="test")
        logger.info("server.start", "listening on http://127.0.0.1:1", port=1)
        logger.request("acme", "POST", "/pareto", 200, 12.5, streamed=False)
        lines = [json.loads(line) for line in
                 stream.getvalue().strip().splitlines()]
        assert len(lines) == 2 and logger.lines == 2
        start, request = lines
        assert start["event"] == "server.start"
        assert start["message"] == "listening on http://127.0.0.1:1"
        assert start["port"] == 1 and start["level"] == "info"
        assert request["event"] == "http.request"
        assert request["tenant"] == "acme"
        assert request["status"] == 200
        assert request["wall_ms"] == 12.5

    def test_level_filter(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream, level="warning")
        logger.info("noise", "dropped")
        logger.error("boom", "kept")
        records = stream.getvalue().strip().splitlines()
        assert len(records) == 1
        assert json.loads(records[0])["event"] == "boom"


# ---------------------------------------------------------------------------
# HTTP end to end: auth, headers, fidelity, metrics, healthz
# ---------------------------------------------------------------------------


class TestHTTPAuth:
    def test_auth_contract_over_the_wire(self, tmp_path):
        tenants = write_tenants(tmp_path / "tenants.json")
        grid = SMALL_GRID.to_dict()

        async def run():
            service = SweepService(engine="vectorized")
            ops = OpsLayer(tenants_path=tenants)
            server = await start_http_server(service, "127.0.0.1", 0, ops=ops)
            port = server.port
            try:
                missing = await raw_request(port, "POST", "/pareto",
                                            payload={"grid": grid})
                wrong = await raw_request(port, "POST", "/pareto",
                                          api_key="nope",
                                          payload={"grid": grid})
                good = await raw_request(port, "POST", "/pareto",
                                         api_key="ak-acme",
                                         payload={"grid": grid})
                health = await raw_request(port, "GET", "/healthz")
                ready = await raw_request(port, "GET", "/healthz?ready=1")
                metrics = await raw_request(port, "GET", "/metrics")
                drain = await raw_request(port, "POST", "/cluster/drain",
                                          api_key="ak-acme")
                drain_admin = await raw_request(port, "POST", "/cluster/drain",
                                                api_key="ak-ops")
                return (missing, wrong, good, health, ready, metrics,
                        drain, drain_admin)
            finally:
                await server.close()

        (missing, wrong, good, health, ready, metrics,
         drain, drain_admin) = asyncio.run(run())

        status, headers, body = missing
        assert status == 401
        assert headers["www-authenticate"] == "Bearer"
        error = json.loads(body)["error"]
        assert error["code"] == "unauthenticated"

        status, _, body = wrong
        assert status == 403
        assert json.loads(body)["error"]["code"] == "forbidden"

        status, _, body = good
        payload = json.loads(body)
        assert status == 200 and payload["ok"] and payload["result"]

        # liveness and readiness stay open (no credentials on probes)
        status, _, body = health
        health_body = json.loads(body)
        assert status == 200 and health_body["ok"]
        assert health_body["version"]
        assert health_body["uptime_s"] >= 0.0
        assert health_body["ready"] is True
        status, _, _ = ready
        assert status == 200  # a ready server passes the readiness probe

        # the scrape endpoint is public by default (in-perimeter scrapers)
        status, headers, body = metrics
        assert status == 200
        assert headers["content-type"].startswith("text/plain; version=0.0.4")
        text = body.decode()
        assert 'repro_http_requests_total{status="200",tenant="acme"} 1' \
            in text
        assert 'repro_http_rejects_total{code="unauthenticated",' \
            'tenant="anonymous"} 1' in text
        assert "repro_http_request_seconds_bucket" in text
        assert 'repro_http_request_seconds_count{tenant="acme"} 1' in text
        assert "repro_evaluations 1" in text  # flattened /stats counters

        # the operator verb is admin-gated; this server has no cluster
        status, _, body = drain
        assert status == 403
        error = json.loads(body)["error"]
        assert error["code"] == "forbidden" and error["tenant"] == "acme"
        status, _, body = drain_admin
        assert status == 404
        assert json.loads(body)["error"]["code"] == "no-cluster"

    def test_sweep_through_auth_is_bit_identical_to_anonymous(self, tmp_path):
        tenants = write_tenants(tmp_path / "tenants.json")

        async def serve(ops, api_key):
            service = SweepService(engine="vectorized")
            server = await start_http_server(service, "127.0.0.1", 0, ops=ops)
            client = ServiceClient("127.0.0.1", server.port, api_key=api_key)
            try:
                return await client.fetch_result(SMALL_GRID.to_dict())
            finally:
                await server.close()

        authed = asyncio.run(serve(
            OpsLayer(tenants_path=tenants, max_cold_sweeps=1), "ak-acme"
        ))
        anonymous = asyncio.run(serve(None, None))
        np.testing.assert_array_equal(
            authed.accelerated_ms, anonymous.accelerated_ms
        )
        np.testing.assert_array_equal(
            authed.baseline_ms, anonymous.baseline_ms
        )
        direct = sweep_grid(authed.grid, engine="vectorized", use_cache=False)
        np.testing.assert_allclose(
            authed.accelerated_ms, direct.accelerated_ms, rtol=RTOL, atol=0.0
        )

    def test_key_rotation_hot_reloads_over_http(self, tmp_path):
        path = tmp_path / "tenants.json"
        tenants = write_tenants(path)

        async def run():
            service = SweepService(engine="vectorized")
            ops = OpsLayer(tenants_path=tenants)
            server = await start_http_server(service, "127.0.0.1", 0, ops=ops)
            port = server.port
            try:
                before, _, _ = await raw_request(port, "GET", "/stats",
                                                 api_key="ak-acme")
                write_tenants(path, {"tenants": [
                    {"name": "acme", "key": "ak-v2"}
                ]})
                server.ops.reload()  # what the SIGHUP handler calls
                revoked, _, _ = await raw_request(port, "GET", "/stats",
                                                  api_key="ak-acme")
                rotated, _, _ = await raw_request(port, "GET", "/stats",
                                                  api_key="ak-v2")
                return before, revoked, rotated
            finally:
                await server.close()

        before, revoked, rotated = asyncio.run(run())
        assert before == 200
        assert revoked == 403
        assert rotated == 200


class TestRateLimitHTTP:
    def test_429_carries_retry_after_header(self, tmp_path):
        tenants = write_tenants(tmp_path / "tenants.json")

        async def run():
            service = SweepService(engine="vectorized")
            ops = OpsLayer(tenants_path=tenants)
            server = await start_http_server(service, "127.0.0.1", 0, ops=ops)
            port = server.port
            try:
                # "slow" has rate 1/s, burst 1: the second request is dry
                first = await raw_request(port, "POST", "/pareto",
                                          api_key="ak-slow",
                                          payload={"grid":
                                                   SMALL_GRID.to_dict()})
                second = await raw_request(port, "POST", "/pareto",
                                           api_key="ak-slow",
                                           payload={"grid":
                                                    SMALL_GRID.to_dict()})
                # rate-exempt monitoring endpoints still answer
                stats = await raw_request(port, "GET", "/stats",
                                          api_key="ak-slow")
                return first, second, stats
            finally:
                await server.close()

        first, second, stats = asyncio.run(run())
        assert first[0] == 200
        status, headers, body = second
        assert status == 429
        assert int(headers["retry-after"]) >= 1
        error = json.loads(body)["error"]
        assert error["code"] == "rate-limited"
        assert error["tenant"] == "slow"
        assert error["retry_after_s"] > 0.0
        assert stats[0] == 200
        ops_stats = json.loads(stats[2])["result"]["ops"]
        assert ops_stats["admission"]["rate_limited"] == 1
        assert ops_stats["tenants"]["tenants"] == 3


class TestQuotaFairness:
    def test_flooded_cold_slots_leave_cached_queries_fast(self):
        """One tenant saturating the cold-sweep cap + queue gets a 429
        ``overloaded``; a cached pareto query still answers quickly."""
        cold_grids = [
            SweepGrid(apps=("nerf",), scale_factors=(8,),
                      clocks_ghz=(0.8 + i * 0.1,))
            for i in range(3)
        ]

        def slow_cold(grid, engine="vectorized", ngpc=None, max_workers=None):
            result = sweep_grid(grid, engine="vectorized", ngpc=ngpc,
                                use_cache=False)
            time.sleep(0.4)
            return result

        async def run():
            service = SweepService(engine="vectorized", sweep_fn=slow_cold)
            ops = OpsLayer(max_cold_sweeps=1, cold_queue_depth=1)
            server = await start_http_server(service, "127.0.0.1", 0, ops=ops)
            client = ServiceClient("127.0.0.1", server.port)
            try:
                warm = SMALL_GRID.to_dict()
                # warm the query grid before the flood (pays one slow cold)
                await client.sweep(warm)

                async def cold(grid):
                    other = ServiceClient("127.0.0.1", server.port)
                    try:
                        return await other.sweep(grid.to_dict())
                    finally:
                        await other.close()

                flood = []
                for grid in cold_grids:  # staggered: slot, queue, reject
                    flood.append(asyncio.ensure_future(cold(grid)))
                    await asyncio.sleep(0.05)
                start = time.perf_counter()
                front = await client.pareto_front(warm)
                cached_s = time.perf_counter() - start
                outcomes = await asyncio.gather(
                    *flood, return_exceptions=True
                )
                return cached_s, front, outcomes, service.stats()
            finally:
                await client.close()
                await server.close()

        cached_s, front, outcomes, stats = asyncio.run(run())
        assert front, "cached query answered nothing"
        assert cached_s < 0.3, (
            f"cached query took {cached_s * 1000:.0f} ms under flood"
        )
        rejected = [o for o in outcomes if isinstance(o, ServiceError)]
        completed = [o for o in outcomes if not isinstance(o, Exception)]
        assert len(completed) == 2, outcomes  # slot + queued both finish
        assert len(rejected) == 1, outcomes  # beyond the queue: 429
        assert rejected[0].status == 429
        assert rejected[0].code == "overloaded"
        assert stats["ops"]["admission"]["overloaded"] == 1
        assert stats["ops"]["admission"]["cold_queued"] == 1
        assert stats["ops"]["admission"]["cold_active"] == 0


# ---------------------------------------------------------------------------
# rolling cluster restarts
# ---------------------------------------------------------------------------


class TestDrainGenerations:
    def test_drain_stops_old_generation_and_keeps_inflight_blocks(self):
        """The lease/complete contract across a drain: an old-generation
        worker's in-flight completion still counts (no lost block), its
        next poll says stop, and a new registration joins generation 2."""
        from repro.core.cache import calibration_fingerprint
        from repro.core.dse import evaluate_shard_task, install_worker_state
        from repro.service.cluster import ShardCoordinator

        grid = SweepGrid(apps=("nerf",), scale_factors=(8, 16))

        async def run():
            coordinator = ShardCoordinator(poll_timeout_s=5.0)
            await coordinator.start()
            old = coordinator._register({})["worker_id"]
            install_worker_state(calibration_fingerprint(), None)
            job = asyncio.ensure_future(coordinator.submit(grid))
            await asyncio.sleep(0)
            lease = await coordinator._lease({"worker_id": old})
            assert "task" in lease

            drain = await coordinator.drain()
            assert drain["generation"] == 2
            assert drain["previous_generation"] == 1
            assert drain["draining_workers"] == 1
            assert drain["leases_outstanding"] == 1

            # the in-flight completion lands (first-result-wins, not lost)
            reply = await coordinator._complete({
                "worker_id": old, "job_id": lease["job_id"],
                "task_id": lease["task_id"],
                "arrays": evaluate_shard_task(lease["task"]),
            })
            assert reply["accepted"] is True
            # ... and the drained worker's next poll is a stop
            stop = await coordinator._lease({"worker_id": old})
            assert stop == {"stop": True, "reason": "drained"}

            # a fresh worker joins the new generation and drains the rest
            registration = coordinator._register({})
            assert registration["generation"] == 2
            fresh = registration["worker_id"]
            while not job.done():
                lease = await coordinator._lease({"worker_id": fresh})
                if "task" not in lease:
                    continue
                await coordinator._complete({
                    "worker_id": fresh, "job_id": lease["job_id"],
                    "task_id": lease["task_id"],
                    "arrays": evaluate_shard_task(lease["task"]),
                })
            result = await job
            stats = coordinator.stats()
            await coordinator.close()
            return result, stats

        result, stats = asyncio.run(run())
        assert stats["generation"] == 2 and stats["drains"] == 1
        assert stats["jobs"]["completed"] == 1
        assert stats["blocks"]["completed"] >= 2
        direct = sweep_grid(grid.resolve().normalized(), engine="vectorized",
                            use_cache=False)
        np.testing.assert_array_equal(
            result.accelerated_ms, direct.accelerated_ms
        )

    def test_drain_wakes_parked_long_pollers(self):
        """An idle old-generation worker parked in the lease long-poll
        must get its stop on drain's notify, not after the poll timeout."""
        from repro.service.cluster import ShardCoordinator

        async def run():
            coordinator = ShardCoordinator(poll_timeout_s=30.0)
            await coordinator.start()
            worker = coordinator._register({})["worker_id"]
            poller = asyncio.ensure_future(
                coordinator._lease({"worker_id": worker})
            )
            await asyncio.sleep(0.05)  # parked on the condition
            assert not poller.done()
            await coordinator.drain()
            lease = await asyncio.wait_for(poller, timeout=2.0)
            await coordinator.close()
            return lease

        lease = asyncio.run(run())
        assert lease == {"stop": True, "reason": "drained"}


class TestRollingRestartEndToEnd:
    def test_drain_mid_sweep_with_real_workers_finishes_exactly(self):
        """POST /cluster/drain against a live 2-worker cluster mid-sweep:
        the old workers exit 0, replacements finish the sweep, and the
        result is bit-identical to a local evaluation (nothing lost,
        nothing double-counted)."""
        from repro.api import DistributedBackend, Session
        from repro.service.cluster import spawn_local_workers, terminate_workers

        grid = SweepGrid(
            apps=("nerf", "gia"),
            scale_factors=(8, 16, 32, 64),
            clocks_ghz=(0.8, 1.2, 1.695),
            grid_sram_kb=(512, 1024),
            n_batches=(8, 16),
        )
        backend = DistributedBackend(
            workers=2, lease_timeout_s=1.0, block_delay_s=0.4
        )
        replacements = []
        try:
            old_workers = list(backend._workers)
            holder = {}
            thread = threading.Thread(
                target=lambda: holder.update(
                    result=backend.sweep(grid.resolve().normalized())
                )
            )
            thread.start()
            time.sleep(0.3)  # both workers hold leased blocks now

            status, body = request_json(
                "127.0.0.1", backend.port, "POST", "/cluster/drain"
            )
            assert status == 200 and body["ok"], body
            drain = body["result"]
            assert drain["generation"] == 2
            assert drain["previous_generation"] == 1
            assert drain["draining_workers"] == 2

            # generation-2 replacements join the same port and take over
            replacements = spawn_local_workers(
                "127.0.0.1", backend.port, 2
            )
            thread.join(timeout=120)
            assert not thread.is_alive(), "sweep did not survive the drain"

            local = Session.local(engine="vectorized").sweep(grid).result
            np.testing.assert_array_equal(
                holder["result"].accelerated_ms, local.accelerated_ms
            )
            np.testing.assert_array_equal(
                holder["result"].baseline_ms, local.baseline_ms
            )

            # the drained workers exit cleanly on their own
            deadline = time.monotonic() + 20
            while (time.monotonic() < deadline
                   and any(p.poll() is None for p in old_workers)):
                time.sleep(0.1)
            assert [p.poll() for p in old_workers] == [0, 0]

            stats = backend.coordinator.stats()
            assert stats["generation"] == 2
            assert stats["drains"] == 1
            assert stats["jobs"]["completed"] == 1
            assert stats["jobs"]["inflight"] == 0
            # replacements did real work after the handover
            assert stats["workers"]["current_generation"] >= 2
        finally:
            terminate_workers(replacements)
            backend.close()
