"""Statistical properties of the spatial hash and encoding edge cases."""

import numpy as np
import pytest

from repro.encodings import HashGridEncoding, hash_coords
from repro.encodings.grids import HASH_PRIMES


class TestHashUniformity:
    def test_chi_square_on_dense_block(self):
        """Bucket occupancy of a dense coordinate block is near-uniform.

        With n keys over k buckets the chi-square statistic has mean
        ~k; a poor hash concentrates mass and blows it up by orders of
        magnitude.  Accept anything below 2x the degrees of freedom.
        """
        n_side = 32
        grid = np.stack(
            np.meshgrid(*([np.arange(n_side)] * 3), indexing="ij"), axis=-1
        ).reshape(-1, 3)
        k = 1 << 10
        h = hash_coords(grid, k)
        counts = np.bincount(h, minlength=k)
        expected = len(grid) / k
        chi_square = float(((counts - expected) ** 2 / expected).sum())
        assert chi_square < 2.0 * k

    def test_axis_sensitivity(self):
        """Changing any single coordinate changes the hash (almost) always."""
        rng = np.random.default_rng(0)
        base = rng.integers(0, 10**6, size=(512, 3))
        h0 = hash_coords(base, 1 << 19)
        for axis in range(3):
            shifted = base.copy()
            shifted[:, axis] += 1
            h1 = hash_coords(shifted, 1 << 19)
            assert np.mean(h0 == h1) < 0.01

    def test_primes_are_the_instant_ngp_constants(self):
        assert HASH_PRIMES == (1, 2654435761, 805459861)

    def test_large_coordinates_do_not_overflow(self):
        coords = np.full((4, 3), 2**40, dtype=np.int64)
        h = hash_coords(coords, 1 << 16)
        assert np.all((h >= 0) & (h < 1 << 16))


class TestEncodingEdgeCases:
    def make(self, **kwargs):
        defaults = dict(
            n_levels=4, n_features=2, log2_table_size=10,
            base_resolution=4, growth_factor=1.5, seed=0,
        )
        defaults.update(kwargs)
        return HashGridEncoding(3, **defaults)

    def test_corner_of_domain(self):
        """Exactly (1,1,1) must index valid table entries, not overflow."""
        enc = self.make()
        out = enc.forward(np.ones((1, 3), dtype=np.float32))
        assert np.isfinite(out).all()

    def test_zero_corner(self):
        enc = self.make()
        out = enc.forward(np.zeros((1, 3), dtype=np.float32))
        assert np.isfinite(out).all()

    def test_single_level_single_feature(self):
        enc = HashGridEncoding(
            3, n_levels=1, n_features=1, log2_table_size=6,
            base_resolution=2, seed=0,
        )
        out = enc.forward(np.full((2, 3), 0.5, dtype=np.float32))
        assert out.shape == (2, 1)

    def test_empty_batch(self):
        enc = self.make()
        out = enc.forward(np.zeros((0, 3), dtype=np.float32))
        assert out.shape == (0, enc.output_dim)

    def test_backward_with_empty_batch(self):
        enc = self.make()
        enc.forward(np.zeros((0, 3), dtype=np.float32), cache=True)
        grads = enc.backward(np.zeros((0, enc.output_dim), dtype=np.float32))
        assert all(np.all(g == 0) for g in grads.param_grads)

    def test_one_dimensional_grid(self):
        enc = HashGridEncoding(
            1, n_levels=3, n_features=2, log2_table_size=8,
            base_resolution=4, seed=0,
        )
        out = enc.forward(np.array([[0.3], [0.7]], dtype=np.float32))
        assert out.shape == (2, 6)
