"""Tests for activation functions, including derivative checks."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import (
    Exponential,
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softplus,
    Tanh,
    get_activation,
)

ALL_ACTIVATIONS = [
    Identity(),
    ReLU(),
    LeakyReLU(0.1),
    Sigmoid(),
    Tanh(),
    Softplus(),
    Exponential(),
]

# Points away from the ReLU kink so the numerical derivative is valid.
finite_floats = hnp.arrays(
    np.float64,
    shape=(16,),
    elements=st.floats(-4.0, 4.0).filter(lambda v: abs(v) > 1e-2),
)


@pytest.mark.parametrize("act", ALL_ACTIVATIONS, ids=lambda a: a.name)
@given(x=finite_floats)
def test_backward_matches_numerical_derivative(act, x):
    eps = 1e-6
    dy = np.ones_like(x)
    analytic = act.backward(x, dy)
    numeric = (act.forward(x + eps) - act.forward(x - eps)) / (2 * eps)
    np.testing.assert_allclose(analytic, numeric, rtol=1e-3, atol=1e-5)


def test_relu_clamps_negative():
    x = np.array([-3.0, -0.1, 0.0, 0.1, 3.0])
    np.testing.assert_array_equal(ReLU().forward(x), [0, 0, 0, 0.1, 3.0])


def test_sigmoid_is_stable_for_large_inputs():
    x = np.array([-1000.0, 1000.0])
    out = Sigmoid().forward(x)
    assert np.all(np.isfinite(out))
    np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)


def test_exponential_clips_to_avoid_overflow():
    out = Exponential().forward(np.array([100.0]))
    assert np.isfinite(out).all()
    assert out[0] == pytest.approx(np.exp(15.0))


def test_softplus_non_negative():
    x = np.linspace(-20, 20, 101)
    assert np.all(Softplus().forward(x) >= 0)


def test_leaky_relu_rejects_negative_alpha():
    with pytest.raises(ValueError):
        LeakyReLU(-0.5)


def test_registry_lookup():
    assert isinstance(get_activation("relu"), ReLU)
    assert isinstance(get_activation("SIGMOID"), Sigmoid)
    with pytest.raises(KeyError):
        get_activation("nope")
