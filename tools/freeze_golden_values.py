#!/usr/bin/env python
"""Regenerate the golden constants of ``tests/test_golden_values.py``.

Prints the ``GOLDEN_*`` dictionaries with full float precision
(``repr`` round-trips exactly).  Run after an *intentional* model
change, paste the output into the test module, and record the reason in
the commit message — the golden net exists precisely so that this step
is loud and deliberate.

Usage:  PYTHONPATH=src python tools/freeze_golden_values.py
"""

from __future__ import annotations

import itertools

from repro.apps.params import APP_NAMES, ENCODING_SCHEMES
from repro.core.area_power import ngpc_area_power
from repro.core.axes import AXES
from repro.core.config import NFPConfig, NGPCConfig, SCALE_FACTORS
from repro.core.emulator import Emulator, emulate
from repro.core.encoding_engine import encoding_kernel_speedup
from repro.core.mlp_engine import mlp_kernel_speedup
from repro.core.ngpc import bandwidth_model

#: the frozen architecture grid: NeRF hashgrid @ FHD, NGPC-8.  The axis
#: list and its order come from the registry (every ``kind == "arch"``
#: spec), not a private tuple; only the swept values live here.  The
#: 32-engine point doubles the per-level lane groups.
ARCH_GRID_AXES = tuple(spec.name for spec in AXES if spec.kind == "arch")
ARCH_GRID_VALUES = {
    "clocks_ghz": (1.2, 1.695),
    "grid_sram_kb": (512, 1024),
    "n_engines": (16, 32),
    "n_batches": (8, 16),
}
assert set(ARCH_GRID_AXES) == set(ARCH_GRID_VALUES), (
    "registry arch axes changed; update ARCH_GRID_VALUES deliberately"
)


def main() -> None:
    print("# (app, scale) -> per-frame emulator decomposition, hashgrid @ FHD")
    print("GOLDEN_EMULATE = {")
    for app in APP_NAMES:
        for scale in SCALE_FACTORS:
            r = emulate(app, "multi_res_hashgrid", scale)
            print(f"    ({app!r}, {scale}): {{")
            for name in ("baseline_ms", "accelerated_ms", "encoding_engine_ms",
                         "mlp_engine_ms", "dma_ms", "fused_rest_ms"):
                print(f"        {name!r}: {getattr(r, name)!r},")
            print("    },")
    print("}\n")

    print("# scheme -> scale -> four-app average end-to-end speedup (Fig. 12)")
    print("GOLDEN_FIG12_AVERAGE = {")
    for scheme in ENCODING_SCHEMES:
        print(f"    {scheme!r}: {{")
        for scale in SCALE_FACTORS:
            speedups = [emulate(a, scheme, scale).speedup for a in APP_NAMES]
            print(f"        {scale}: {sum(speedups) / len(speedups)!r},")
        print("    },")
    print("}\n")

    print("# scheme -> four-app mean kernel speedups at scale 64 (Fig. 13)")
    print("GOLDEN_FIG13_AT_64 = {")
    for scheme in ENCODING_SCHEMES:
        enc = sum(encoding_kernel_speedup(a, scheme, 64) for a in APP_NAMES) / 4
        mlp = sum(mlp_kernel_speedup(a, scheme, 64) for a in APP_NAMES) / 4
        print(f"    {scheme!r}: {{'encoding': {enc!r}, 'mlp': {mlp!r}}},")
    print("}\n")

    print("# app -> NGPC IO bandwidth at 4K 60 FPS (Table III)")
    print("GOLDEN_BANDWIDTH = {")
    for app in APP_NAMES:
        r = bandwidth_model(app)
        print(f"    {app!r}: {{")
        print(f"        'input_gbps': {r.input_gbps!r},")
        print(f"        'output_gbps': {r.output_gbps!r},")
        print(f"        'total_gbps': {r.total_gbps!r},")
        print(f"        'access_time_ms': {r.access_time_ms!r},")
        print("    },")
    print("}\n")

    print("# scale -> NGPC area/power at 7 nm (Fig. 15)")
    print("GOLDEN_AREA_POWER = {")
    for scale in SCALE_FACTORS:
        r = ngpc_area_power(NGPCConfig(scale_factor=scale))
        print(f"    {scale}: {{'area_mm2_7nm': {r.area_mm2_7nm!r}, "
              f"'power_w_7nm': {r.power_w_7nm!r}}},")
    print("}\n")

    print("# (clock GHz, grid SRAM KB, engines, batches) -> accelerated ms;")
    print("# NeRF hashgrid @ FHD, NGPC-8 (architecture-axis golden net)")
    print("GOLDEN_ARCH_GRID = {")
    for point in itertools.product(
        *(ARCH_GRID_VALUES[name] for name in ARCH_GRID_AXES)
    ):
        values = dict(zip(ARCH_GRID_AXES, point))
        nfp = NFPConfig(
            clock_ghz=values["clocks_ghz"],
            grid_sram_kb_per_engine=values["grid_sram_kb"],
            n_encoding_engines=values["n_engines"],
        )
        config = NGPCConfig(
            scale_factor=8, nfp=nfp, n_pipeline_batches=values["n_batches"]
        )
        r = Emulator(config).run("nerf", "multi_res_hashgrid")
        print(f"    ({', '.join(str(v) for v in point)}): "
              f"{r.accelerated_ms!r},")
    print("}")


if __name__ == "__main__":
    main()
