#!/usr/bin/env bash
# Tier-1 gate: the full pytest suite plus a smoke run of the
# sweep-scaling benchmark (the >= 10x batched-DSE acceptance check runs
# in --quick mode here; run the benchmark without --quick for the full
# 1000-point vectorized gate and the >= 50k-point block-parallel gate)
# and a 2-worker block-parallel engine smoke so the process-pool path is
# exercised on every push.
#
# Usage:  bash tools/run_checks.sh
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== sweep-scaling benchmark (smoke) =="
python benchmarks/bench_sweep_scaling.py --quick

echo
echo "== block-parallel engine (2 workers, tiny grid) =="
python - <<'PY'
import numpy as np

from repro.core.dse import SweepGrid, sweep_grid

grid = SweepGrid(
    apps=("nerf", "gia"),
    scale_factors=(8, 64),
    clocks_ghz=(1.2, 1.695),
    n_batches=(8, 16),
)
proc = sweep_grid(grid, engine="process", max_workers=2, use_cache=False)
vec = sweep_grid(grid, engine="vectorized", use_cache=False)
np.testing.assert_allclose(
    proc.accelerated_ms, vec.accelerated_ms, rtol=1e-9, atol=0.0
)
print(f"process engine ok on a {proc.grid.size}-point grid "
      f"(block-sharded, 2 workers)")
PY
