#!/usr/bin/env bash
# Tier-1 gate: the full pytest suite plus a smoke run of the
# sweep-scaling benchmark (the >= 10x batched-DSE acceptance check runs
# in --quick mode here; run the benchmark without --quick for the full
# 1000-point gate).
#
# Usage:  bash tools/run_checks.sh
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== sweep-scaling benchmark (smoke) =="
python benchmarks/bench_sweep_scaling.py --quick
