#!/usr/bin/env bash
# Tier-1 gate: the full pytest suite plus a smoke run of the
# sweep-scaling benchmark (the >= 10x batched-DSE acceptance check runs
# in --quick mode here; run the benchmark without --quick for the full
# 1000-point vectorized gate and the >= 50k-point block-parallel gate),
# a 2-worker block-parallel engine smoke so the process-pool path is
# exercised on every push, the service latency/coalescing gates
# (bench_service --quick), the Session facade overhead gate
# (bench_api --quick), and a black-box sweep-service smoke: start
# `repro serve` as a subprocess, run one sweep and one pareto query over
# raw HTTP plus a remote-backend repro.api Session round trip (keep-alive
# reuse counted, local/remote parity asserted), and require a clean
# SIGINT shutdown.  The distributed layer gets two gates of its own: a
# 2-worker shard-cluster smoke (coordinator + real `repro worker`
# subprocesses, one sweep via DistributedBackend, parity vs vectorized,
# clean shutdown) and the cluster speedup benchmark
# (bench_cluster --quick, >= 2x over the single-host process engine,
# emitting BENCH_cluster.json).  The persistent result store gets its
# own section: the store test suite runs standalone (warm restart,
# block-delta evaluation, corruption quarantine) and the store
# benchmark gates (warm load >= 50x re-evaluation, overlap evaluates
# only the missing blocks, bit-identity) run in --quick mode, emitting
# BENCH_store.json.  The adaptive exploration engine gets an
# exact-answer smoke (Session explore='adaptive' parity vs exhaustive,
# including the structured infeasible error, plus a CLI
# `repro dse --explore adaptive` run) and its acceptance gates
# (bench_adaptive --quick: golden equality, <= 10% of a multi-million
# point hypercube evaluated, >= 5x cold wall clock, emitting
# BENCH_adaptive.json).  The streaming result path gets a pickle ban
# (no `import pickle` / `pickle.` call anywhere under
# src/repro/service — the versioned binary frame transport replaced
# it on the wire) and its acceptance gates (bench_stream --quick:
# first exact partial front in < 10% of the dense wall on a >= 500k
# point grid, frame/pickle round-trip bit-identity, emitting
# BENCH_stream.json).  The multi-tenant ops layer gets its own
# section: the ops test suite runs standalone (auth 401/403 split,
# hot reload, quota fairness, Prometheus /metrics, rolling drain), the
# quota-isolation gates (bench_service_ops --quick: cached-query p99
# held under a misbehaving tenant's flood, both 429 shapes observed,
# emitting BENCH_service_ops.json) run in --quick mode, and an
# auth-enabled black-box smoke starts `repro serve --tenants FILE`,
# requires the 401/200 split over raw HTTP, runs `repro query
# --api-key` and `repro admin ops --api-key` through the CLI, and
# requires a clean SIGINT shutdown.
#
# Usage:  bash tools/run_checks.sh
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== result store suite (warm restart, delta, corruption) =="
python -m pytest tests/test_store.py tests/test_model_cache.py -q

echo
echo "== result store gates (smoke) =="
python benchmarks/bench_store.py --quick

echo
echo "== sweep-scaling benchmark (smoke) =="
python benchmarks/bench_sweep_scaling.py --quick

echo
echo "== block-parallel engine (2 workers, tiny grid) =="
python - <<'PY'
import numpy as np

from repro.core.dse import SweepGrid, sweep_grid

grid = SweepGrid(
    apps=("nerf", "gia"),
    scale_factors=(8, 64),
    clocks_ghz=(1.2, 1.695),
    n_batches=(8, 16),
)
proc = sweep_grid(grid, engine="process", max_workers=2, use_cache=False)
vec = sweep_grid(grid, engine="vectorized", use_cache=False)
np.testing.assert_allclose(
    proc.accelerated_ms, vec.accelerated_ms, rtol=1e-9, atol=0.0
)
print(f"process engine ok on a {proc.grid.size}-point grid "
      f"(block-sharded, 2 workers)")
PY

echo
echo "== shard cluster smoke (2 workers, sweep via DistributedBackend) =="
python - <<'PY'
import numpy as np

from repro.api import DistributedBackend, SweepGrid
from repro.core.dse import sweep_grid

grid = SweepGrid(
    apps=("nerf", "gia"),
    scale_factors=(8, 64),
    clocks_ghz=(1.2, 1.695),
    n_batches=(8, 16),
)
backend = DistributedBackend(workers=2)
try:
    result = backend.sweep(grid.resolve().normalized())
    vec = sweep_grid(grid.resolve().normalized(), engine="vectorized",
                     use_cache=False)
    np.testing.assert_allclose(
        result.accelerated_ms, vec.accelerated_ms, rtol=1e-9, atol=0.0
    )
    stats = backend.coordinator.stats()
    assert stats["workers"]["registered"] == 2, stats
    assert stats["blocks"]["completed"] >= 1, stats
finally:
    backend.close()
workers = backend._workers
assert all(p.poll() is not None for p in workers), "workers not reaped"
print(f"cluster smoke ok: {result.grid.size}-point sweep over 2 workers "
      f"({stats['blocks']['completed']} blocks, engine={result.engine}), "
      f"clean shutdown")
PY

echo
echo "== cluster speedup gate (smoke) =="
python benchmarks/bench_cluster.py --quick

echo
echo "== service latency + coalescing gates (smoke) =="
python benchmarks/bench_service.py --quick

echo
echo "== Session facade overhead gate (smoke) =="
python benchmarks/bench_api.py --quick

echo
echo "== adaptive exploration smoke (parity + structured infeasible) =="
python - <<'PY'
from repro.api import InfeasibleQueryError, Session, SweepGrid

grid = SweepGrid(
    apps=("nerf", "gia"),
    scale_factors=(8, 16, 32, 64),
    clocks_ghz=(0.8, 1.2, 1.695),
    n_batches=(8, 16),
)
session = Session.local(engine="vectorized")
adaptive = session.sweep(grid, explore="adaptive")
dense = session.sweep(grid, explore="exhaustive")
assert adaptive.explore == "adaptive", adaptive.explore
assert [p.to_dict() for p in adaptive.pareto()] == \
       [p.to_dict() for p in dense.pareto()]
assert adaptive.cheapest(app="nerf", fps=60.0).to_dict() == \
       dense.cheapest(app="nerf", fps=60.0).to_dict()
try:
    adaptive.cheapest(app="gia", fps=10.0**9)
except InfeasibleQueryError as exc:
    try:
        dense.cheapest(app="gia", fps=10.0**9)
    except InfeasibleQueryError as exc2:
        assert str(exc) == str(exc2) and exc.best_fps == exc2.best_fps
    else:
        raise AssertionError("dense path did not raise")
else:
    raise AssertionError("adaptive path did not raise")
stats = adaptive.explore_stats
assert stats["points_evaluated"] <= stats["points_total"], stats
assert stats["bound_violations"] == 0, stats
print(f"adaptive smoke ok: parity on {adaptive.size} points "
      f"({stats['points_evaluated']} evaluated in {stats['rounds']} "
      f"rounds), structured infeasible error identical across modes")
PY

echo
echo "== CLI adaptive exploration smoke (repro dse --explore adaptive) =="
python -m repro dse --explore adaptive \
    --sweep scale=8:16:32:64,clock=0.8:1.2:1.695,batches=8:16 \
    --fps 60 > /dev/null
echo "repro dse --explore adaptive ok"

echo
echo "== adaptive exploration gates (smoke) =="
python benchmarks/bench_adaptive.py --quick

echo
echo "== axis-registry gate (no private axis tuples) =="
# every axis list must derive from repro.core.axes: two adjacent
# axis-name string literals on one line is the AXIS_FIELDS-style
# hard-coded tuple this refactor retired
AXIS_NAMES='apps|schemes|scale_factors|pixel_counts|clocks_ghz|grid_sram_kb|n_engines|n_batches|gridtypes|log2_hashmap_sizes|per_level_scales'
if grep -rnE --include='*.py' \
    "[\"']($AXIS_NAMES)[\"'][[:space:]]*,[[:space:]]*[\"']($AXIS_NAMES)[\"']" \
    src/repro benchmarks tools \
    | grep -v '^src/repro/core/axes\.py:'; then
    echo "FAIL: literal axis-name tuple found outside src/repro/core/axes.py" >&2
    exit 1
fi
echo "axis lists derive from repro.core.axes only"

echo
echo "== hash-grid axes parity (local / store / cluster / adaptive) =="
python - <<'PY'
import tempfile

import numpy as np

from repro.api import DistributedBackend, Session, SweepGrid
from repro.core.dse import sweep_grid
from repro.store import ResultStore, sweep_with_store

grid = SweepGrid(
    apps=("nerf", "gia"),
    scale_factors=(8, 16, 32, 64),
    gridtypes=("hash", "tiled"),
    log2_hashmap_sizes=(14, 19),
    per_level_scales=(1.5, 2.0),
).resolve().normalized()
vec = sweep_grid(grid, engine="vectorized", use_cache=False)
assert vec.accelerated_ms.ndim == 11, vec.accelerated_ms.shape

stored = sweep_with_store(
    ResultStore(tempfile.mkdtemp()), grid, use_cache=False
)
np.testing.assert_array_equal(stored.accelerated_ms, vec.accelerated_ms)

session = Session.local(engine="vectorized")
adaptive = session.sweep(grid, explore="adaptive")
dense = session.sweep(grid, explore="exhaustive")
for sel in (
    {"gridtype": "hash", "log2_hashmap_size": 14, "per_level_scale": 2.0},
    {"gridtype": "tiled", "log2_hashmap_size": 19, "per_level_scale": 1.5},
):
    assert [p.to_dict() for p in adaptive.pareto(**sel)] == \
           [p.to_dict() for p in dense.pareto(**sel)]
    assert adaptive.cheapest(app="nerf", fps=30.0, **sel).to_dict() == \
           dense.cheapest(app="nerf", fps=30.0, **sel).to_dict()
    assert adaptive.cheapest(app="nerf", train_steps_per_s=1.0, **sel) \
        .to_dict() == \
        dense.cheapest(app="nerf", train_steps_per_s=1.0, **sel).to_dict()

backend = DistributedBackend(workers=2)
try:
    cluster = backend.sweep(grid)
    np.testing.assert_array_equal(cluster.accelerated_ms, vec.accelerated_ms)
finally:
    backend.close()
print(f"hash-grid parity ok: {grid.size}-point extended sweep bit-identical "
      f"across local, store-backed, cluster and adaptive paths")
PY

echo
echo "== pickle ban (the frame transport owns the wire) =="
if grep -rnE '^\s*(import pickle|from pickle)|pickle\.' src/repro/service/ --include='*.py'; then
    echo "FAIL: pickle import/call found under src/repro/service" >&2
    exit 1
fi
echo "no pickle imports or calls under src/repro/service"

echo
echo "== streaming gates (smoke) =="
python benchmarks/bench_stream.py --quick

echo
echo "== sweep service smoke (serve + query + clean shutdown) =="
python - <<'PY'
import json, re, signal, subprocess, sys, http.client

proc = subprocess.Popen(
    [sys.executable, "-m", "repro", "serve", "--port", "0",
     "--engine", "vectorized"],
    stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
)
try:
    # skip any interpreter/library warnings until the banner shows up
    match = None
    for line in proc.stdout:
        match = re.search(r"listening on http://([\d.]+):(\d+)", line)
        if match:
            break
    assert match, "server exited without printing a listening line"
    host, port = match.group(1), int(match.group(2))

    def post(path, payload):
        conn = http.client.HTTPConnection(host, port, timeout=120)
        try:
            conn.request("POST", path, json.dumps(payload),
                         {"Content-Type": "application/json"})
            resp = conn.getresponse()
            return resp.status, json.loads(resp.read())
        finally:
            conn.close()

    grid = {"apps": ["nerf"], "scale_factors": [8, 16, 32, 64],
            "clocks_ghz": [0.8, 1.2, 1.695]}
    status, sweep = post("/sweep", {"grid": grid})
    assert status == 200 and sweep["ok"], sweep
    status, front = post("/pareto", {"grid": grid})
    assert status == 200 and front["result"], front

    # remote-backend Session round trip: same queries through the typed
    # facade, one keep-alive connection, parity vs the local backend
    import numpy as np
    from repro.api import InfeasibleQueryError, Session, SweepGrid

    remote = Session.remote(host=host, port=port)
    local = Session.local(engine="vectorized")
    api_grid = SweepGrid.from_dict(grid)
    remote_sweep = remote.sweep(api_grid)
    local_sweep = local.sweep(api_grid)
    np.testing.assert_allclose(
        remote_sweep.result.accelerated_ms,
        local_sweep.result.accelerated_ms, rtol=1e-9, atol=0.0,
    )
    assert [p.to_dict() for p in remote_sweep.pareto()] == \
           [p.to_dict() for p in local_sweep.pareto()]
    hit = remote_sweep.cheapest(app="nerf", fps=30.0)
    try:
        remote_sweep.cheapest(app="nerf", fps=10.0**9)
    except InfeasibleQueryError:
        pass
    else:
        raise AssertionError("remote cheapest did not raise on infeasible")
    stats = remote.stats()
    assert stats["http"]["reused"] >= 1, stats["http"]
    remote.close()

    proc.send_signal(signal.SIGINT)
    code = proc.wait(timeout=30)
    assert code == 0, f"server exited with {code}"
    print(f"service smoke ok: swept {sweep['result']['size']} points, "
          f"pareto front of {len(front['result'])} configs, "
          f"Session parity on {remote_sweep.size} points "
          f"(cheapest@30fps={hit.describe()}, infeasible raises, "
          f"{stats['http']['reused']} keep-alive reuses), clean shutdown")
finally:
    if proc.poll() is None:
        proc.kill()
PY

echo
echo "== service ops suite (auth, quotas, metrics, drain) =="
python -m pytest tests/test_service_ops.py -q

echo
echo "== service ops quota-isolation gates (smoke) =="
python benchmarks/bench_service_ops.py --quick

echo
echo "== authenticated service smoke (tenants file + CLI key flow) =="
python - <<'PY'
import json, os, re, signal, subprocess, sys, tempfile, http.client

tenants = {"tenants": [
    {"name": "ci", "key": "ak-ci", "admin": True},
    {"name": "guest", "key": "ak-guest", "rate_per_s": 50},
]}
tmp = tempfile.mkdtemp()
tenants_path = os.path.join(tmp, "tenants.json")
with open(tenants_path, "w") as handle:
    json.dump(tenants, handle)

proc = subprocess.Popen(
    [sys.executable, "-m", "repro", "serve", "--port", "0",
     "--engine", "vectorized", "--tenants", tenants_path,
     "--max-cold-sweeps", "2"],
    stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
)
try:
    match = None
    for line in proc.stdout:
        match = re.search(r"listening on http://([\d.]+):(\d+)", line)
        if match:
            break
    assert match, "server exited without printing a listening line"
    # the startup banner is a structured JSON log record now
    record = json.loads(line)
    assert record["event"] == "server.start" and record["tenants"] == 2
    host, port = match.group(1), int(match.group(2))

    def post(path, payload, key=None):
        conn = http.client.HTTPConnection(host, port, timeout=120)
        headers = {"Content-Type": "application/json"}
        if key:
            headers["Authorization"] = f"Bearer {key}"
        try:
            conn.request("POST", path, json.dumps(payload), headers)
            resp = conn.getresponse()
            return resp.status, json.loads(resp.read())
        finally:
            conn.close()

    grid = {"apps": ["nerf"], "scale_factors": [8, 16, 32, 64]}
    status, body = post("/pareto", {"grid": grid})
    assert status == 401 and body["error"]["code"] == "unauthenticated", body
    status, body = post("/pareto", {"grid": grid}, key="ak-guest")
    assert status == 200 and body["result"], body

    # the CLI key flow end to end: query + admin through `python -m repro`
    env = dict(os.environ)
    query = subprocess.run(
        [sys.executable, "-m", "repro", "query", "pareto",
         "--host", host, "--port", str(port), "--api-key", "ak-guest",
         "--sweep", "scale=8:16:32:64"],
        capture_output=True, text=True, env=env,
    )
    assert query.returncode == 0, query.stderr
    assert json.loads(query.stdout), "empty pareto front from the CLI"
    admin = subprocess.run(
        [sys.executable, "-m", "repro", "admin", "ops",
         "--host", host, "--port", str(port), "--api-key", "ak-ci"],
        capture_output=True, text=True, env=env,
    )
    assert admin.returncode == 0, admin.stderr
    ops = json.loads(admin.stdout)
    assert ops["tenants"]["tenants"] == 2, ops
    assert ops["admission"]["max_cold_sweeps"] == 2, ops

    proc.send_signal(signal.SIGINT)
    code = proc.wait(timeout=30)
    assert code == 0, f"server exited with {code}"
    print(f"auth smoke ok: 401 without a key, pareto with one, CLI query "
          f"+ admin round trips, clean shutdown")
finally:
    if proc.poll() is None:
        proc.kill()
PY
