"""End-to-end quality gate: train each application briefly and score it.

The functional counterpart of the performance benches: verifies the whole
substrate (encodings, MLPs, rendering) still *learns* — the property the
NGPC is worth accelerating in the first place.
"""

from repro.apps import GIAApp, NSDFApp, NVRApp, NeRFApp
from repro.apps.evaluation import evaluate


def bench_quality_gia(benchmark):
    def run():
        app = GIAApp(image_size=32, seed=0)
        app.train(steps=60, batch_size=1024)
        return evaluate(app)

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  GIA: {metrics['psnr_db']:.1f} dB PSNR, SSIM {metrics['ssim']:.3f}")
    assert metrics["psnr_db"] > 22.0
    assert metrics["ssim"] > 0.5


def bench_quality_nsdf(benchmark):
    def run():
        app = NSDFApp(seed=0)
        app.train(steps=80, batch_size=1024)
        return evaluate(app)

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  NSDF: MAE {metrics['volume_mae']:.4f}, "
          f"silhouette {metrics['silhouette_agreement']:.1%}")
    assert metrics["volume_mae"] < 0.03
    assert metrics["silhouette_agreement"] > 0.85


def bench_quality_nerf(benchmark):
    def run():
        app = NeRFApp(seed=0)
        app.train(steps=80, batch_size=1024)
        return evaluate(app)

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  NeRF: novel-view {metrics['novel_view_psnr_db']:.1f} dB, "
          f"SSIM {metrics['novel_view_ssim']:.3f}")
    assert metrics["novel_view_psnr_db"] > 14.0


def bench_quality_nvr(benchmark):
    def run():
        app = NVRApp(seed=0)
        app.train(steps=80, batch_size=1024)
        return evaluate(app)

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  NVR: density corr {metrics['density_correlation']:.3f}, "
          f"albedo MSE {metrics['albedo_mse']:.4f}")
    assert metrics["density_correlation"] > 0.5
    assert metrics["albedo_mse"] < 0.05
