"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper, prints the
rows it produces next to the paper's reported values, and asserts the
qualitative shape (who wins, scaling direction, bound compliance).
Run with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest

from repro.analysis import format_comparison


def print_rows(title, rows):
    """Print experiment rows as ours-vs-paper comparison lines."""
    print()
    print(f"== {title} ==")
    for row in rows:
        print(" ", format_comparison(row.label, row.measured, row.reported))


@pytest.fixture
def report():
    """Fixture exposing the row printer to benches."""
    return print_rows
