"""Table II: GPU compute/memory utilization per kernel."""

from repro.analysis import get_experiment
from repro.gpu.profiler import memory_bound_fraction, utilization_rows


def bench_table2_utilization(benchmark, report):
    rows = benchmark(get_experiment("table2").run)
    report("Table II utilization (ours == transcribed paper data)", rows[:8])
    table = utilization_rows()
    assert len(table) == 24
    # Section IV shape: the workloads are memory-bound on balance
    for scheme in ("multi_res_hashgrid", "multi_res_densegrid", "low_res_densegrid"):
        assert memory_bound_fraction(scheme) >= 0.5
    # MLP kernels are consistently memory-bound (small networks, O(M) traffic)
    mlp_rows = [r for r in table if r["kernel"] == "mlp"]
    assert all(r["memory_util_pct"] > r["compute_util_pct"] for r in mlp_rows)
