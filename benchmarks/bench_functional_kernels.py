"""Microbenchmarks of the functional substrate: encodings and MLPs.

These are genuine wall-clock measurements (pytest-benchmark) of our numpy
implementations — useful for tracking implementation regressions, and for
seeing first-hand the paper's observation that the encoding and MLP
kernels dominate neural graphics inference time.
"""

import numpy as np
import pytest

from repro.apps.params import get_config
from repro.apps.base import build_grid_encoding
from repro.core.encoding_engine import EncodingEngineFunctional
from repro.encodings import HashGridEncoding
from repro.nn import FullyFusedMLP

BATCH = 4096


@pytest.fixture(scope="module")
def points3d():
    return np.random.default_rng(0).uniform(0, 1, (BATCH, 3)).astype(np.float32)


def _make_encoding(scheme):
    config = get_config("nerf", scheme)
    return build_grid_encoding(config.grid, spatial_dim=3, seed=0)


@pytest.mark.parametrize(
    "scheme",
    ["multi_res_hashgrid", "multi_res_densegrid", "low_res_densegrid"],
)
def bench_encoding_forward(benchmark, points3d, scheme):
    enc = _make_encoding(scheme)
    out = benchmark(enc.forward, points3d)
    assert out.shape == (BATCH, enc.output_dim)


def bench_encoding_backward(benchmark, points3d):
    enc = _make_encoding("multi_res_hashgrid")
    out = enc.forward(points3d, cache=True)
    dy = np.ones_like(out)
    grads = benchmark(enc.backward, dy)
    assert len(grads.param_grads) == enc.n_levels


def bench_hardware_functional_engine(benchmark, points3d):
    """The fixed-point datapath costs more in numpy but must agree."""
    enc = HashGridEncoding(
        3, n_levels=8, n_features=2, log2_table_size=14,
        base_resolution=8, growth_factor=1.5, seed=0,
    )
    hw = EncodingEngineFunctional(enc)
    out = benchmark(hw.forward, points3d)
    np.testing.assert_allclose(out, enc.forward(points3d), atol=2e-4)


def bench_mlp_forward(benchmark, points3d):
    mlp = FullyFusedMLP(32, 4, hidden_dim=64, hidden_layers=4, seed=0)
    x = np.random.default_rng(1).normal(size=(BATCH, 32)).astype(np.float32)
    out = benchmark(mlp.forward, x)
    assert out.shape == (BATCH, 4)


def bench_mlp_train_step(benchmark):
    from repro.nn import Adam, L2Loss

    mlp = FullyFusedMLP(32, 4, hidden_dim=64, hidden_layers=4, seed=0)
    opt = Adam(1e-3)
    loss = L2Loss()
    x = np.random.default_rng(1).normal(size=(1024, 32)).astype(np.float32)
    y = np.random.default_rng(2).normal(size=(1024, 4)).astype(np.float32)

    def step():
        out = mlp.forward(x, cache=True)
        _, dy = loss.value_and_grad(out, y)
        grads = mlp.backward(dy)
        opt.step(mlp.parameters(), grads.weight_grads)
        return out

    benchmark(step)
