"""Robustness of the Fig. 12 reproduction to the reconstructed constants."""

from repro.analysis.sensitivity import sensitivity_sweep


def bench_sensitivity_sweep(benchmark):
    results = benchmark(sensitivity_sweep, (0.8, 0.9, 1.1, 1.2))
    print()
    for r in results:
        shifts = ", ".join(
            f"@{s}: {100 * (r.perturbed[s] - r.nominal[s]) / r.nominal[s]:+.1f}%"
            for s in sorted(r.nominal)
        )
        print(f"  {r.parameter} x{r.factor}: {shifts}")
    # the reproduction is stable: +/-20 % on reconstructed inputs moves
    # the averaged speedups by well under a factor of two
    assert all(r.max_relative_shift < 0.4 for r in results)
    # and perturbations in opposite directions move results in opposite
    # directions (no degenerate insensitivity)
    up = next(r for r in results if r.parameter == "dma_overhead" and r.factor > 1)
    down = next(r for r in results if r.parameter == "dma_overhead" and r.factor < 1)
    assert up.perturbed[8] < up.nominal[8] < down.perturbed[8]
