#!/usr/bin/env python
"""Acceptance gates of the adaptive exploration engine.

The engine's contract is *exact answers for a fraction of the work*, so
both halves are gated:

1. **Golden equality** (correctness): on a small grid, every Pareto
   front (mean-mode and per-app) and cheapest query — including the
   infeasible case — answered adaptively must match the exhaustive
   dense result exactly.
2. **Evaluated fraction** (the headline): on a >= 1M-point grid, the
   representative query battery (one Pareto front plus one cheapest
   query) must touch **<= 10%** of the hypercube.
3. **Wall clock**: the same battery answered adaptively must beat the
   cold exhaustive path (dense sweep + the same dense queries) by
   **>= 5x**.  Cold-vs-cold is the fair comparison: the dense sweep is
   paid exactly once per grid (re-runs hit the result cache), and the
   sweep is precisely the cost this engine exists to avoid.

Results are written to ``BENCH_adaptive.json`` and uploaded as a CI
artifact so the exploration-efficiency trajectory stays
machine-readable across PRs.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_adaptive.py          # full gate
    PYTHONPATH=src python benchmarks/bench_adaptive.py --quick  # CI smoke

``--quick`` keeps the >= 1M-point grid (the adaptive side costs
milliseconds; the exhaustive baseline a few hundred) and trims only the
repeat count.  Exits non-zero when any gate is missed.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from repro.api import InfeasibleQueryError, SweepGrid
from repro.core.dse import sweep_grid
from repro.explore import AdaptiveExplorer

#: ceiling on the evaluated fraction of the large-grid hypercube
FRACTION_CEILING = 0.10

#: floor on the cold wall-clock ratio (exhaustive / adaptive)
SPEEDUP_FLOOR = 5.0

GOLDEN_GRID = SweepGrid(
    apps=("nerf", "gia"),
    schemes=("multi_res_hashgrid", "multi_res_densegrid"),
    scale_factors=(8, 16, 32, 64),
    clocks_ghz=(0.8, 1.2, 1.695),
    grid_sram_kb=(512, 1024),
    n_batches=(8, 16),
)

LARGE_GRID = SweepGrid(
    apps=("nerf", "gia"),
    scale_factors=tuple(2 ** i for i in range(8)),
    clocks_ghz=tuple(0.5 + 0.0125 * i for i in range(128)),
    grid_sram_kb=tuple(2 ** (4 + i) for i in range(16)),
    n_engines=tuple(2 ** i for i in range(8)),
    n_batches=tuple(2 ** i for i in range(16)),
)

FPS_TARGET = 60.0


def check_golden_equality() -> list:
    """Adaptive == exhaustive on every query of the small grid."""
    mismatches = []
    dense = sweep_grid(GOLDEN_GRID, engine="vectorized")
    explorer = AdaptiveExplorer(GOLDEN_GRID)
    grid = dense.grid
    for scheme in grid.schemes:
        for app in (None,) + tuple(grid.apps):
            got = [p.to_dict() for p in explorer.pareto(scheme, app=app)]
            want = [p.to_dict() for p in dense.pareto_front(scheme, app=app)]
            if got != want:
                mismatches.append(f"pareto({scheme}, app={app})")
    for scheme in grid.schemes:
        for app in grid.apps:
            for fps in (1.0, 60.0, 240.0, 10.0**9):
                want = dense.cheapest_point_meeting_fps(app, fps,
                                                        scheme=scheme)
                try:
                    hit = explorer.cheapest(app, fps, scheme=scheme)
                    got = hit.to_dict()
                except InfeasibleQueryError:
                    got = None
                want = want.to_dict() if want is not None else None
                if got != want:
                    mismatches.append(f"cheapest({scheme}, {app}, {fps:g})")
    if explorer.stats.bound_violations:
        mismatches.append("bound violations on the real (monotone) surface")
    return mismatches


def query_battery_adaptive(explorer: AdaptiveExplorer) -> None:
    grid = explorer.grid
    scheme = grid.schemes[0]
    explorer.pareto(scheme, n_pixels=grid.pixel_counts[0])
    explorer.cheapest(grid.apps[0], FPS_TARGET,
                      n_pixels=grid.pixel_counts[0], scheme=scheme)


def query_battery_dense(grid: SweepGrid) -> None:
    result = sweep_grid(grid, engine="vectorized", use_cache=False)
    scheme = grid.schemes[0]
    result.pareto_front(scheme, n_pixels=grid.pixel_counts[0])
    result.cheapest_point_meeting_fps(grid.apps[0], FPS_TARGET,
                                      n_pixels=grid.pixel_counts[0],
                                      scheme=scheme)


def probe(quick: bool) -> dict:
    grid = LARGE_GRID.resolve().normalized()
    repeats = 3 if quick else 5

    # -- adaptive: evaluated fraction + repeated cold-explorer timings -----
    adaptive_s = []
    stats = None
    for _ in range(repeats):
        explorer = AdaptiveExplorer(grid)
        start = time.perf_counter()
        query_battery_adaptive(explorer)
        adaptive_s.append(time.perf_counter() - start)
        stats = explorer.stats
    fraction = stats.points_evaluated / stats.points_total

    # -- exhaustive: the first dense sweep is the cost being avoided -------
    # The headline ratio is cold-vs-cold: a user asking these queries pays
    # the full dense sweep exactly once (repeats of the same grid hit the
    # result cache), so the fair exhaustive number is the first, cold run.
    # Warm re-runs are recorded for context only — they mostly measure how
    # warm the allocator's large-array arenas are.
    start = time.perf_counter()
    query_battery_dense(grid)
    exhaustive_cold = time.perf_counter() - start
    exhaustive_warm_s = []
    for _ in range(repeats - 1):
        start = time.perf_counter()
        query_battery_dense(grid)
        exhaustive_warm_s.append(time.perf_counter() - start)

    adaptive_med = statistics.median(adaptive_s)
    return {
        "grid_points": grid.size,
        "points_evaluated": stats.points_evaluated,
        "evaluated_fraction": fraction,
        "rounds": stats.rounds,
        "blocks_evaluated": stats.blocks_evaluated,
        "blocks_pruned": stats.blocks_pruned,
        "bound_violations": stats.bound_violations,
        "adaptive_s": adaptive_med,
        "adaptive_samples_s": adaptive_s,
        "exhaustive_s": exhaustive_cold,
        "exhaustive_warm_s": exhaustive_warm_s,
        "speedup": exhaustive_cold / adaptive_med,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--output", default="BENCH_adaptive.json")
    args = parser.parse_args()

    failures = []

    mismatches = check_golden_equality()
    failures += [f"golden equality: {m}" for m in mismatches]
    print(f"golden grid: {GOLDEN_GRID.size} points, "
          f"{len(mismatches)} mismatching queries")

    results = probe(args.quick)
    results["quick"] = args.quick
    results["fraction_ceiling"] = FRACTION_CEILING
    results["speedup_floor"] = SPEEDUP_FLOOR
    results["golden_mismatches"] = mismatches

    print(f"large grid: {results['grid_points']:,} points")
    print(f"evaluated:  {results['points_evaluated']:,} points "
          f"({results['evaluated_fraction'] * 100:.2f}% of the hypercube) "
          f"in {results['rounds']} rounds")
    print(f"wall clock: exhaustive {results['exhaustive_s'] * 1000:8.1f} ms, "
          f"adaptive {results['adaptive_s'] * 1000:8.1f} ms "
          f"({results['speedup']:.1f}x)")

    if results["grid_points"] < 1_000_000:
        failures.append("grid too small for the headline gate")
    if results["evaluated_fraction"] > FRACTION_CEILING:
        failures.append(
            f"fraction gate: evaluated "
            f"{results['evaluated_fraction'] * 100:.2f}% of the hypercube "
            f"(ceiling {FRACTION_CEILING * 100:.0f}%)"
        )
    if results["speedup"] < SPEEDUP_FLOOR:
        failures.append(
            f"speedup gate: adaptive is {results['speedup']:.1f}x faster "
            f"than exhaustive (floor {SPEEDUP_FLOOR:.0f}x)"
        )
    if results["bound_violations"]:
        failures.append("bound violations on the real (monotone) surface")
    results["failures"] = failures

    with open(args.output, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("adaptive exploration gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
