"""Wall-clock inference microbenchmarks of the four applications.

Measures samples/second of our numpy implementations per application —
the functional analogue of the paper's Section III profiling (the ratios
between apps mirror their per-sample network and encoding costs).
"""

import numpy as np
import pytest

from repro.apps import GIAApp, NSDFApp, NVRApp, NeRFApp

BATCH = 2048


def bench_gia_inference(benchmark):
    app = GIAApp(image_size=32, seed=0)
    coords = np.random.default_rng(0).uniform(0, 1, (BATCH, 2)).astype(np.float32)
    out = benchmark(app.predict, coords)
    assert out.shape == (BATCH, 3)


def bench_nsdf_inference(benchmark):
    app = NSDFApp(seed=0)
    pts = np.random.default_rng(0).uniform(-0.5, 0.5, (BATCH, 3)).astype(np.float32)
    out = benchmark(app.predict, pts)
    assert out.shape == (BATCH,)


def bench_nerf_query(benchmark):
    app = NeRFApp(seed=0)
    pts = np.random.default_rng(0).uniform(0, 1, (BATCH, 3)).astype(np.float32)
    dirs = np.tile([[0.0, 0.0, 1.0]], (BATCH, 1)).astype(np.float32)
    sigma, rgb = benchmark(app.query, pts, dirs)
    assert sigma.shape == (BATCH,) and rgb.shape == (BATCH, 3)


def bench_nvr_query(benchmark):
    app = NVRApp(seed=0)
    pts = np.random.default_rng(0).uniform(0, 1, (BATCH, 3)).astype(np.float32)
    sigma, albedo, _ = benchmark(app.query, pts)
    assert sigma.shape == (BATCH,) and albedo.shape == (BATCH, 3)


def bench_nerf_render_tile(benchmark):
    """Render a small NeRF tile end to end (encode + 2 MLPs + composite)."""
    from repro.graphics import PinholeCamera
    from repro.graphics.camera import look_at

    app = NeRFApp(seed=0)
    cam = PinholeCamera.from_fov(
        16, 16, 45.0, look_at((0.5, 0.5, 2.1), (0.5, 0.5, 0.5))
    )
    result = benchmark(app.render, cam, 16)
    assert result.rgb.shape == (256, 3)
