#!/usr/bin/env python
"""Persistence probe of the content-addressed result store.

Three gates guard the disk tier (the PR-6 acceptance bar):

1. **Warm restart**: a sweep persisted by one store instance must load
   from a *fresh* instance (a restarted service process, in miniature)
   >= 50x faster than re-evaluating the grid from scratch.  The grid is
   sized so the vectorized evaluation takes real time (~10^5-10^6
   points); the load is a memory-mapped npz open, so the ratio grows
   with the grid.
2. **Delta evaluation**: a sweep whose hypercube overlaps a previously
   evaluated one must load every covered block from the store and
   evaluate *only* the missing blocks
   (``blocks_evaluated == blocks_total - blocks_cached``, with a
   nonzero cached share).
3. **Bit-identity**: every store-served result — the warm-restart load
   and the delta-assembled overlap sweep — must match a from-scratch
   ``sweep_grid`` evaluation bit for bit (``np.array_equal`` on every
   result array, no tolerance).

Results are written to ``BENCH_store.json`` (latencies, the measured
speedup, block counters, byte sizes) and uploaded as a CI artifact so
the persistence trajectory stays machine-readable across PRs.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_store.py          # full gate
    PYTHONPATH=src python benchmarks/bench_store.py --quick  # CI smoke

Exits non-zero when a gate is missed.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time

import numpy as np

from repro.core.dse import (
    RESULT_ARRAY_FIELDS,
    SweepGrid,
    sweep_fingerprint,
    sweep_grid,
)
from repro.gpu.baseline import FHD_PIXELS
from repro.store import ResultStore, new_tier_counters, sweep_with_store

#: the acceptance floor: warm load vs cold re-evaluation
WARM_RESTART_SPEEDUP_FLOOR = 50.0
#: warm-load samples (median reported; first touch pays the page faults)
N_LOAD_SAMPLES = 5


def build_restart_grid(quick: bool) -> SweepGrid:
    """The warm-restart grid: big enough that evaluation dominates.

    The vectorized engine costs ~0.5 us/point, a memory-mapped load a
    few ms regardless of size — so the 50x gate needs >= ~10^5 points
    to be a property of the design rather than of timer noise.
    """
    return SweepGrid(
        scale_factors=(8, 16, 32, 64),
        pixel_counts=(1280 * 720, FHD_PIXELS, 2560 * 1440, 3840 * 2160),
        clocks_ghz=tuple(np.linspace(0.6, 2.0, 32 if quick else 48)),
        grid_sram_kb=(64, 128, 256, 512, 1024, 2048, 4096, 8192),
        n_engines=(1, 2, 4, 8, 16, 32, 64, 128),
        n_batches=(1, 2, 4, 8, 16, 32, 64, 128),
    )


def build_overlap_grids(quick: bool):
    """A subset grid and the superset extending its workload axes."""
    base = dict(
        scale_factors=(8, 16, 32, 64),
        clocks_ghz=(0.8, 1.0, 1.2, 1.695),
        grid_sram_kb=(256, 512, 1024) if quick else (128, 256, 512, 1024, 2048),
        n_engines=(8, 16, 32),
        n_batches=(4, 8, 16),
    )
    subset = SweepGrid(apps=("nerf", "nsdf"), **base)
    superset = SweepGrid(apps=("nerf", "nsdf", "gia", "nvr"), **base)
    return subset, superset


def bit_identical(result, reference) -> bool:
    """True when every result array matches bit for bit (no tolerance)."""
    return all(
        np.array_equal(
            np.asarray(getattr(result, name)), np.asarray(getattr(reference, name))
        )
        for name in RESULT_ARRAY_FIELDS
    )


def probe(quick: bool) -> dict:
    out: dict = {}

    with tempfile.TemporaryDirectory(prefix="bench-store-") as root:
        # -- gate 1: warm restart ------------------------------------------
        grid = build_restart_grid(quick).resolve().normalized()
        key = sweep_fingerprint(grid, None)
        out["restart_grid_points"] = grid.size

        start = time.perf_counter()
        reference = sweep_grid(grid, engine="vectorized", use_cache=False)
        out["eval_s"] = time.perf_counter() - start

        writer = ResultStore(root)
        start = time.perf_counter()
        writer.save_sweep(key, reference)
        out["persist_s"] = time.perf_counter() - start

        load_samples = []
        loaded = None
        for _ in range(N_LOAD_SAMPLES):
            reader = ResultStore(root)  # a fresh instance = a fresh process
            start = time.perf_counter()
            loaded = reader.load_sweep(key)
            load_samples.append(time.perf_counter() - start)
            assert loaded is not None, "persisted sweep must load"
        out["load_s_p50"] = statistics.median(load_samples)
        out["load_s_max"] = max(load_samples)
        out["warm_restart_speedup"] = out["eval_s"] / out["load_s_p50"]
        out["restart_bit_identical"] = bit_identical(loaded, reference)
        out["store_bytes"] = ResultStore(root).stats()["sweeps"]["bytes"]

    with tempfile.TemporaryDirectory(prefix="bench-store-") as root:
        # -- gate 2: overlapping-grid delta evaluation ---------------------
        subset, superset = build_overlap_grids(quick)
        subset = subset.resolve().normalized()
        superset = superset.resolve().normalized()
        out["overlap_subset_points"] = subset.size
        out["overlap_superset_points"] = superset.size

        first = new_tier_counters()
        sweep_with_store(ResultStore(root), subset, counters=first, use_cache=False)
        second = new_tier_counters()
        start = time.perf_counter()
        overlap = sweep_with_store(
            ResultStore(root), superset, counters=second, use_cache=False
        )
        out["overlap_sweep_s"] = time.perf_counter() - start
        out["first_counters"] = first
        out["second_counters"] = second

        # -- gate 3: the delta-assembled result is bit-identical -----------
        reference = sweep_grid(superset, engine="vectorized", use_cache=False)
        out["overlap_bit_identical"] = bit_identical(overlap, reference)

    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--output", default="BENCH_store.json")
    args = parser.parse_args()

    results = probe(args.quick)
    results["quick"] = args.quick

    print(f"restart grid: {results['restart_grid_points']:,} points "
          f"({results['store_bytes'] / 1e6:.1f} MB persisted)")
    print(f"cold evaluation: {results['eval_s'] * 1000:10.1f} ms")
    print(f"persist:         {results['persist_s'] * 1000:10.1f} ms")
    print(f"warm load:       {results['load_s_p50'] * 1000:10.2f} ms p50 "
          f"(max {results['load_s_max'] * 1000:.2f} ms) -> "
          f"{results['warm_restart_speedup']:.0f}x, "
          f"bit_identical={results['restart_bit_identical']}")
    second = results["second_counters"]
    print(f"overlap sweep ({results['overlap_subset_points']:,} -> "
          f"{results['overlap_superset_points']:,} points): "
          f"{second['blocks_cached']}/{second['blocks_total']} blocks cached, "
          f"{second['blocks_evaluated']} evaluated "
          f"({results['overlap_sweep_s'] * 1000:.1f} ms, "
          f"bit_identical={results['overlap_bit_identical']})")

    failures = []
    if results["warm_restart_speedup"] < WARM_RESTART_SPEEDUP_FLOOR:
        failures.append(
            f"warm-restart gate: load is only "
            f"{results['warm_restart_speedup']:.1f}x faster than "
            f"re-evaluation (floor {WARM_RESTART_SPEEDUP_FLOOR:.0f}x)"
        )
    if not results["restart_bit_identical"]:
        failures.append("warm-restart result differs from fresh evaluation")
    if results["first_counters"]["blocks_cached"] != 0:
        failures.append("first overlap sweep hit blocks in an empty store")
    expected_delta = second["blocks_total"] - second["blocks_cached"]
    if second["blocks_cached"] == 0:
        failures.append("overlap gate: no blocks reused from the subset sweep")
    if second["blocks_evaluated"] != expected_delta:
        failures.append(
            f"overlap gate: evaluated {second['blocks_evaluated']} blocks, "
            f"want exactly the missing {expected_delta}"
        )
    if not results["overlap_bit_identical"]:
        failures.append("delta-assembled result differs from fresh evaluation")
    results["failures"] = failures

    with open(args.output, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all store gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
