"""Figure 13: kernel-level engine speedups + Timeloop/Accelergy check."""

import pytest

from repro.analysis import get_experiment
from repro.apps.params import APP_NAMES
from repro.calibration import paper
from repro.core import encoding_kernel_speedup, mlp_kernel_speedup


def bench_fig13_kernels(benchmark, report):
    rows = benchmark(get_experiment("fig13").run)
    report("Fig. 13 kernel-level speedups at scale 64", rows)
    for scheme, targets in paper.FIG13_KERNEL_SPEEDUPS_AT_64.items():
        enc = sum(encoding_kernel_speedup(a, scheme, 64) for a in APP_NAMES) / 4
        mlp = sum(mlp_kernel_speedup(a, scheme, 64) for a in APP_NAMES) / 4
        assert enc == pytest.approx(targets["encoding"], rel=0.05)
        assert mlp == pytest.approx(targets["mlp"], rel=0.05)
    # shape: LRDG encoding gains the most (8 inputs in parallel), and the
    # MLP engine speedup exceeds the encoding speedup for the hashgrid
    lrdg = sum(
        encoding_kernel_speedup(a, "low_res_densegrid", 64) for a in APP_NAMES
    ) / 4
    hashg = sum(
        encoding_kernel_speedup(a, "multi_res_hashgrid", 64) for a in APP_NAMES
    ) / 4
    assert lrdg > hashg
    # scaling: kernel speedups grow linearly with the scaling factor
    s8 = encoding_kernel_speedup("nerf", "multi_res_hashgrid", 8)
    s64 = encoding_kernel_speedup("nerf", "multi_res_hashgrid", 64)
    assert s64 / s8 == pytest.approx(8.0, rel=0.05)


def bench_fig13_timeloop_agreement(benchmark):
    """The paper: emulator within ~7 % of Timeloop/Accelergy."""
    from repro.apps.params import get_config
    from repro.core import NGPCConfig, TimeloopMLPModel
    from repro.core.mlp_engine import mlp_engine_time_ms
    from repro.gpu.baseline import FHD_PIXELS

    def worst_delta():
        worst = 0.0
        for scheme in paper.FIG13_KERNEL_SPEEDUPS_AT_64:
            for app in APP_NAMES:
                config = get_config(app, scheme)
                for scale in (8, 16, 32, 64):
                    ngpc = NGPCConfig(scale_factor=scale)
                    engine = mlp_engine_time_ms(config, FHD_PIXELS, ngpc)
                    ta = TimeloopMLPModel(ngpc).time_ms(config, FHD_PIXELS)
                    worst = max(worst, abs(ta - engine) / engine)
        return worst

    worst = benchmark(worst_delta)
    print(f"\n  worst emulator-vs-Timeloop delta: {worst * 100:.2f}% "
          f"(paper: ~{paper.TIMELOOP_AGREEMENT_PCT}%)")
    assert worst * 100 <= paper.TIMELOOP_AGREEMENT_PCT
