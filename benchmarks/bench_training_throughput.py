"""Training-step throughput of the four applications (wall clock).

The functional analogue of the paper's observation that NeRF's two-network
pipeline costs the most per sample: one optimizer step, fixed batch.
"""

import pytest

from repro.apps import GIAApp, NSDFApp, NVRApp, NeRFApp

BATCH = 1024


@pytest.fixture(scope="module")
def apps():
    return {
        "gia": GIAApp(image_size=32, seed=0),
        "nsdf": NSDFApp(seed=0),
        "nerf": NeRFApp(seed=0),
        "nvr": NVRApp(seed=0),
    }


def bench_train_step_gia(benchmark, apps):
    result = benchmark(apps["gia"].train_step, BATCH)
    assert result.loss >= 0


def bench_train_step_nsdf(benchmark, apps):
    result = benchmark(apps["nsdf"].train_step, BATCH)
    assert result.loss >= 0


def bench_train_step_nerf(benchmark, apps):
    result = benchmark(apps["nerf"].train_step, BATCH)
    assert result.loss >= 0


def bench_train_step_nvr(benchmark, apps):
    result = benchmark(apps["nvr"].train_step, BATCH)
    assert result.loss >= 0


def bench_train_step_nerf_rays(benchmark, apps):
    """The full differentiable-rendering step (compositing backward)."""
    result = benchmark(apps["nerf"].train_step_rays, 128, 16)
    assert result.loss >= 0
