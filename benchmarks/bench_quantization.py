"""Hardware-fidelity study: the NFP's fixed-point datapath and 8-bit
feature SRAM vs the float software reference.

The NFP stores grid features at 1 byte each (what makes a 2^19 x 2 level
fill the 1 MB grid SRAM exactly) and computes interpolation in fixed
point with the shift-approximated modulo.  This bench measures the
end-to-end quality cost of those hardware choices on a trained GIA model.
"""

import numpy as np

from repro.apps import GIAApp
from repro.core import EncodingEngineFunctional
from repro.graphics import psnr


def _train_gia(steps=150):
    app = GIAApp(image_size=48, seed=0)
    app.train(steps=steps, batch_size=1024)
    return app


def bench_quantized_datapath_quality(benchmark):
    app = _train_gia()

    def evaluate():
        h, w = app.image.shape[:2]
        ys, xs = np.meshgrid(
            (np.arange(h) + 0.5) / h, (np.arange(w) + 0.5) / w, indexing="ij"
        )
        coords = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(np.float32)
        # software reference output
        sw = app.network.forward(app.encoding.forward(coords))
        # hardware datapath: fixed point, float features
        hw = EncodingEngineFunctional(app.encoding, quantize_features=False)
        hw_out = app.network.forward(hw.forward(coords))
        # hardware datapath: fixed point + 8-bit features
        hwq = EncodingEngineFunctional(app.encoding, quantize_features=True)
        hwq_out = app.network.forward(hwq.forward(coords))
        return sw, hw_out, hwq_out

    sw, hw_out, hwq_out = benchmark(evaluate)
    fixed_point_psnr = psnr(hw_out, sw)
    quantized_psnr = psnr(hwq_out, sw)
    print(f"\n  fixed-point datapath vs float reference: {fixed_point_psnr:.1f} dB")
    print(f"  + 8-bit feature SRAM:                    {quantized_psnr:.1f} dB")
    # the fixed-point datapath alone is visually lossless (> 60 dB);
    # 8-bit features stay above a usable threshold
    assert fixed_point_psnr > 60.0
    assert quantized_psnr > 30.0
    assert fixed_point_psnr > quantized_psnr
