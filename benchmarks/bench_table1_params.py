"""Table I: the application/encoding parameter registry."""

from repro.analysis import get_experiment
from repro.apps import iter_configs


def bench_table1_params(benchmark, report):
    rows = benchmark(get_experiment("table1").run)
    report("Table I derived quantities", rows)
    configs = list(iter_configs())
    assert len(configs) == 12
    # every hashgrid config encodes to 32 dims (16 levels x 2 features)
    for config in configs:
        if config.grid.scheme == "multi_res_hashgrid":
            assert config.grid.encoded_dim == 32
        else:
            assert config.grid.encoded_dim == 16
