"""Design-space exploration: the architect's read of Figs. 12 + 15."""

from repro.analysis import format_table
from repro.calibration import paper
from repro.core.dse import (
    design_space,
    efficiency_sweet_spot,
    pareto_frontier,
    smallest_scale_for_fps,
)


def bench_design_space_pareto(benchmark):
    points = benchmark(design_space, "multi_res_hashgrid")
    rows = [
        [f"NGPC-{p.scale_factor}", f"{p.area_overhead_pct:.2f}%",
         f"{p.average_speedup:.1f}x", f"{p.speedup_per_area_pct:.2f}"]
        for p in points
    ]
    print("\n" + format_table(
        ["config", "area", "avg speedup", "speedup / area %"],
        rows,
        title="NGPC design space (hashgrid)",
    ))
    # every scale trades more area for more speed: all Pareto-optimal
    assert len(pareto_frontier(points)) == 4
    # the marginal return shrinks: NGPC-8 is the efficiency sweet spot
    assert efficiency_sweet_spot(points).scale_factor == 8
    speeds = [p.average_speedup for p in points]
    assert speeds == sorted(speeds)


def bench_smallest_scale_targets(benchmark):
    """What does each Fig. 14 capability actually cost?"""

    def sweep():
        return {
            ("nerf", "4k", 30): smallest_scale_for_fps(
                "nerf", 30, paper.RESOLUTIONS["4k"]
            ),
            ("gia", "8k", 120): smallest_scale_for_fps(
                "gia", 120, paper.RESOLUTIONS["8k"]
            ),
            ("nvr", "8k", 120): smallest_scale_for_fps(
                "nvr", 120, paper.RESOLUTIONS["8k"]
            ),
            ("nerf", "8k", 120): smallest_scale_for_fps(
                "nerf", 120, paper.RESOLUTIONS["8k"]
            ),
        }

    results = benchmark(sweep)
    print()
    for (app, res, fps), scale in results.items():
        label = f"NGPC-{scale}" if scale else "not achievable"
        print(f"  {app} {res}@{fps}: {label}")
    assert results[("nerf", "4k", 30)] is not None
    assert results[("gia", "8k", 120)] == 8  # GIA is cheap
    assert results[("nerf", "8k", 120)] is None  # matches Fig. 14
