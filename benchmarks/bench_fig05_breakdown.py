"""Figure 5: kernel-level performance breakdown of the four applications."""

import pytest

from repro.analysis import get_experiment
from repro.calibration import paper
from repro.gpu.profiler import kernel_breakdown, kernel_breakdown_averages


def bench_fig5_breakdown(benchmark, report):
    rows = benchmark(get_experiment("fig5").run)
    report("Fig. 5 kernel-level breakdown (% of application cycles)", rows)
    for scheme, targets in paper.FIG5_AVERAGE_FRACTIONS.items():
        avg = kernel_breakdown_averages(scheme)
        assert avg["encoding"] == pytest.approx(targets["encoding"], abs=0.05)
        assert avg["mlp"] == pytest.approx(targets["mlp"], abs=0.05)
    # shape: encoding+MLP dominate every hashgrid application
    for app in ("nerf", "nsdf", "gia", "nvr"):
        b = kernel_breakdown(app, "multi_res_hashgrid")
        assert b["encoding"] + b["mlp"] > 60.0
    # shape: hashgrid is the most encoding-bound scheme
    assert (
        kernel_breakdown_averages("multi_res_hashgrid")["encoding"]
        > kernel_breakdown_averages("multi_res_densegrid")["encoding"]
    )
