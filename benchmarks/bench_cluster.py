#!/usr/bin/env python
"""Distributed-cluster speedup gate: persistent workers vs per-sweep pools.

The acceptance bar of the distributed backend: on a >= 50k-point
architecture grid, a 4-worker shard cluster must evaluate cold sweeps
at least **2x faster** than the single-host ``"process"`` engine with
the same 4 workers.  The win is architectural, not magical: the cluster
keeps its worker processes alive across sweeps (interpreter + NumPy
startup and calibration pre-warm paid once, leases dispatched over
latency-tuned keep-alive connections), where every
``sweep_grid(engine="process")`` call builds a fresh process pool and
re-pays the startup and per-task IPC — so the gate holds even on a
single core, and widens when real cores let workers evaluate blocks in
parallel.

Both sides evaluate the same sequence of *distinct* cold grids (one
clock value perturbed per iteration) so neither the whole-grid memo nor
the service LRU can serve a cached result.  The gate compares
**best-of-N** on both sides: with five-plus processes time-slicing one
CI core, per-iteration wall times jitter by 2x and the minimum is the
standard low-noise estimator of what each architecture can actually do;
medians are recorded alongside in the JSON.

Results are written to ``BENCH_cluster.json`` (per-iteration wall
times, speedup, cluster lease counters) and uploaded as a CI artifact
so the scale-out trajectory stays machine-readable across PRs.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_cluster.py          # full gate
    PYTHONPATH=src python benchmarks/bench_cluster.py --quick  # CI smoke

Exits non-zero when a gate is missed.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

import numpy as np

from repro.api import DistributedBackend, SweepGrid
from repro.core.dse import sweep_grid

#: the acceptance floor: cluster median vs single-host process median
MIN_SPEEDUP = 2.0
#: workers on both sides of the duel
N_WORKERS = 4
#: the gate is defined on a grid at least this large
MIN_GRID_POINTS = 50_000


def build_grid(iteration: int) -> SweepGrid:
    """A >= 50k-point grid, distinct per iteration (cold everywhere)."""
    return SweepGrid(
        scale_factors=(8, 16, 32, 64),
        pixel_counts=tuple(
            int(p) for p in np.linspace(100_000, 3840 * 2160, 10)
        ),
        clocks_ghz=(0.6, 0.8, 1.0, 1.2, 1.695 + iteration * 1e-6),
        grid_sram_kb=(256, 512, 1024, 2048),
        n_engines=(4, 8, 16, 32),
        n_batches=(4, 8, 16, 32),
    )


def probe(iterations: int) -> dict:
    grid_points = build_grid(0).size
    assert grid_points >= MIN_GRID_POINTS, grid_points

    # -- single-host baseline: the "process" engine, 4 workers ------------
    # (a fresh pool per call — exactly what a single-host user gets today)
    single_host_s = []
    for i in range(iterations):
        grid = build_grid(i)
        start = time.perf_counter()
        sweep_grid(grid, engine="process", max_workers=N_WORKERS,
                   use_cache=False)
        single_host_s.append(time.perf_counter() - start)

    # -- distributed: 4 persistent workers behind the shard coordinator ---
    backend = DistributedBackend(workers=N_WORKERS)
    try:
        # one full-size warm-up sweep (a grid outside the timed set): the
        # claim under test is steady-state throughput of persistent
        # workers, so first-touch allocation noise stays out of the gate
        setup_start = time.perf_counter()
        backend.sweep(build_grid(-1))
        warmup_s = time.perf_counter() - setup_start
        distributed_s = []
        results = []
        for i in range(iterations):
            grid = build_grid(i)
            start = time.perf_counter()
            results.append(backend.sweep(grid))
            distributed_s.append(time.perf_counter() - start)
        cluster_stats = backend.coordinator.stats()
    finally:
        backend.close()

    # parity spot check: the last cold grids must agree bit for bit
    # (the backend normalizes axis order — compare on the same layout)
    reference = sweep_grid(
        build_grid(iterations - 1).resolve().normalized(),
        engine="vectorized", use_cache=False,
    )
    np.testing.assert_allclose(
        results[-1].accelerated_ms, reference.accelerated_ms,
        rtol=1e-9, atol=0.0,
    )

    return {
        "grid_points": grid_points,
        "n_workers": N_WORKERS,
        "iterations": iterations,
        "single_host_s": single_host_s,
        "single_host_s_median": statistics.median(single_host_s),
        "single_host_s_best": min(single_host_s),
        "distributed_s": distributed_s,
        "distributed_s_median": statistics.median(distributed_s),
        "distributed_s_best": min(distributed_s),
        "distributed_warmup_s": warmup_s,
        "speedup": min(single_host_s) / min(distributed_s),
        "speedup_median": (
            statistics.median(single_host_s) / statistics.median(distributed_s)
        ),
        "cluster_blocks": cluster_stats["blocks"],
        "cluster_workers_registered": cluster_stats["workers"]["registered"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: fewer iterations, same gate")
    parser.add_argument("--output", default="BENCH_cluster.json")
    args = parser.parse_args()

    results = probe(iterations=3 if args.quick else 7)
    results["quick"] = args.quick

    print(f"grid: {results['grid_points']:,} points, "
          f"{results['n_workers']} workers on both sides")
    print(f"single-host process engine: "
          f"{results['single_host_s_best'] * 1000:8.1f} ms best "
          f"({results['single_host_s_median'] * 1000:.1f} ms median; "
          f"pool built per sweep)")
    print(f"distributed shard cluster:  "
          f"{results['distributed_s_best'] * 1000:8.1f} ms best "
          f"({results['distributed_s_median'] * 1000:.1f} ms median; "
          f"persistent workers, {results['distributed_warmup_s']:.2f}s warmup)")
    print(f"speedup: {results['speedup']:.2f}x best-of-{results['iterations']} "
          f"({results['speedup_median']:.2f}x median; gate >= "
          f"{MIN_SPEEDUP:.1f}x); blocks: {results['cluster_blocks']}")

    failures = []
    if results["grid_points"] < MIN_GRID_POINTS:
        failures.append(
            f"grid gate: {results['grid_points']} points "
            f"(need >= {MIN_GRID_POINTS})"
        )
    if results["speedup"] < MIN_SPEEDUP:
        failures.append(
            f"speedup gate: {results['speedup']:.2f}x over the single-host "
            f"process engine (floor {MIN_SPEEDUP:.1f}x)"
        )
    if results["cluster_workers_registered"] < N_WORKERS:
        failures.append(
            f"cluster gate: only {results['cluster_workers_registered']} of "
            f"{N_WORKERS} workers registered"
        )
    results["failures"] = failures

    with open(args.output, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all cluster gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
