#!/usr/bin/env python
"""Wall-clock scaling of the batched DSE engine vs the naive loop.

The acceptance gate of the batched sweep engine: on a >= 1000-point
(app x scheme x scale x pixels) grid the vectorized engine must beat the
per-point scalar loop by >= 10x wall-clock, while agreeing to 1e-9
relative (the correctness side is pinned by ``tests/test_golden_values``
and ``tests/test_sweep_engine``; this file re-checks a sample so a
regression cannot hide behind a fast-but-wrong path).

Run as a script:

    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py          # full gate
    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py --quick  # CI smoke

Exits non-zero when the speedup floor is missed.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.apps.params import APP_NAMES, ENCODING_SCHEMES
from repro.core.config import SCALE_FACTORS
from repro.core.dse import SweepGrid, sweep_grid
from repro.core.emulator import emulate_uncached

#: wall-clock floor for the full >= 1000-point gate
SPEEDUP_FLOOR = 10.0
#: smoke floor for --quick (smaller grid: fixed per-block overhead weighs more)
QUICK_SPEEDUP_FLOOR = 5.0


def build_grid(n_pixel_steps: int) -> SweepGrid:
    """4 apps x 3 schemes x 4 scales x ``n_pixel_steps`` resolutions."""
    pixel_counts = tuple(
        int(p) for p in np.linspace(100_000, 3840 * 2160, n_pixel_steps)
    )
    return SweepGrid(
        apps=APP_NAMES,
        schemes=ENCODING_SCHEMES,
        scale_factors=SCALE_FACTORS,
        pixel_counts=pixel_counts,
    )


def time_naive_loop(grid: SweepGrid) -> float:
    """The seed-era sweep: one uncached scalar emulation per grid point."""
    start = time.perf_counter()
    for app, scheme, scale, n_pixels in grid.points():
        emulate_uncached(app, scheme, scale, n_pixels)
    return time.perf_counter() - start


def time_batched(grid: SweepGrid, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        sweep_grid(grid, use_cache=False)
        best = min(best, time.perf_counter() - start)
    return best


def time_cached(grid: SweepGrid) -> float:
    sweep_grid(grid)  # warm
    start = time.perf_counter()
    sweep_grid(grid)
    return time.perf_counter() - start


def check_sample_agreement(grid: SweepGrid) -> None:
    result = sweep_grid(grid)
    rng = np.random.default_rng(0)
    for _ in range(10):
        app = grid.apps[rng.integers(len(grid.apps))]
        scheme = grid.schemes[rng.integers(len(grid.schemes))]
        scale = grid.scale_factors[rng.integers(len(grid.scale_factors))]
        n_pixels = grid.pixel_counts[rng.integers(len(grid.pixel_counts))]
        batched = result.point(app, scheme, scale, n_pixels)
        scalar = emulate_uncached(app, scheme, scale, n_pixels)
        rel = abs(batched.accelerated_ms - scalar.accelerated_ms) / scalar.accelerated_ms
        assert rel <= 1e-9, (app, scheme, scale, n_pixels, rel)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: smaller grid, relaxed floor",
    )
    args = parser.parse_args(argv)

    n_pixel_steps = 6 if args.quick else 21
    floor = QUICK_SPEEDUP_FLOOR if args.quick else SPEEDUP_FLOOR
    grid = build_grid(n_pixel_steps)
    if not args.quick and grid.size < 1000:
        raise AssertionError(f"gate requires >= 1000 points, built {grid.size}")

    emulate_uncached("nerf", "multi_res_hashgrid", 8)  # warm calibration caches
    naive_s = time_naive_loop(grid)
    batched_s = time_batched(grid)
    cached_s = time_cached(grid)
    check_sample_agreement(grid)
    speedup = naive_s / batched_s

    print(f"grid: {grid.size} points "
          f"({len(grid.apps)} apps x {len(grid.schemes)} schemes x "
          f"{len(grid.scale_factors)} scales x {len(grid.pixel_counts)} resolutions)")
    print(f"  naive per-point loop : {naive_s * 1e3:9.2f} ms "
          f"({naive_s / grid.size * 1e6:7.1f} us/point)")
    print(f"  batched (vectorized) : {batched_s * 1e3:9.2f} ms "
          f"({batched_s / grid.size * 1e6:7.1f} us/point)")
    print(f"  memoized re-query    : {cached_s * 1e3:9.2f} ms")
    print(f"  speedup              : {speedup:9.1f}x (floor {floor:.0f}x)")
    print("  agreement            : batched == scalar to 1e-9 rel (10-point sample)")

    if speedup < floor:
        print(f"FAIL: batched sweep only {speedup:.1f}x faster (< {floor:.0f}x)")
        return 1
    print("PASS")
    return 0


def bench_sweep_scaling(benchmark):
    """pytest-benchmark hook: the batched engine on the full 1008-point grid."""
    grid = build_grid(21)
    result = benchmark(sweep_grid, grid, use_cache=False)
    assert result.grid.size >= 1000
    naive_s = time_naive_loop(grid)
    assert naive_s / time_batched(grid, repeats=1) >= SPEEDUP_FLOOR


if __name__ == "__main__":
    sys.exit(main())
