#!/usr/bin/env python
"""Wall-clock scaling of the batched DSE engine vs the naive loop.

Two acceptance gates guard the sweep engine:

1. On a >= 1000-point (app x scheme x scale x pixels) workload grid the
   vectorized engine must beat the per-point scalar loop by >= 10x
   wall-clock.
2. On a >= 50k-point grid that also sweeps the architecture axes
   (clock, grid SRAM, engine count, pipeline batches), the block-sharded
   ``"process"`` engine must beat the scalar engine by >= 10x, and
   :func:`repro.core.dse.pareto_front` over 100k points must finish in
   under a second.
3. On a 9-axis grid — the seed eight plus the registry's
   ``log2_hashmap_sizes`` encoding axis — the vectorized fast path must
   still beat the scalar engine by >= 10x (>= 5x in --quick), proving
   axes registered through ``repro.core.axes`` ride the batched paths.

Both sides agree to 1e-9 relative (the correctness net is
``tests/test_golden_values`` + ``tests/test_sweep_engine``; this file
re-checks a sample so a regression cannot hide behind a fast-but-wrong
path).  Results are also written to ``BENCH_sweep.json`` (points/sec per
engine, grid sizes, speedups) so the perf trajectory stays
machine-readable across PRs.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py          # full gate
    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py --quick  # CI smoke

Exits non-zero when a floor is missed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.apps.params import APP_NAMES, ENCODING_SCHEMES
from repro.core.config import SCALE_FACTORS
from repro.core.dse import SweepGrid, pareto_front, sweep_grid
from repro.core.emulator import emulate_uncached

#: wall-clock floor for the full >= 1000-point vectorized gate
SPEEDUP_FLOOR = 10.0
#: smoke floor for --quick (smaller grid: fixed per-block overhead weighs more)
QUICK_SPEEDUP_FLOOR = 5.0
#: floor for the block-parallel engine over the scalar engine on the
#: >= 50k-point architecture grid (full mode only)
PROCESS_SPEEDUP_FLOOR = 10.0
#: ceiling for a 100k-point Pareto front
PARETO_100K_CEILING_S = 1.0


def build_grid(n_pixel_steps: int) -> SweepGrid:
    """4 apps x 3 schemes x 4 scales x ``n_pixel_steps`` resolutions."""
    pixel_counts = tuple(
        int(p) for p in np.linspace(100_000, 3840 * 2160, n_pixel_steps)
    )
    return SweepGrid(
        apps=APP_NAMES,
        schemes=ENCODING_SCHEMES,
        scale_factors=SCALE_FACTORS,
        pixel_counts=pixel_counts,
    )


def build_architecture_grid(quick: bool) -> SweepGrid:
    """The architecture-axis hypercube: >= 50k points in full mode."""
    n_pixel_steps = 2 if quick else 7
    clocks = (0.9, 1.695) if quick else (0.6, 0.9, 1.2, 1.695, 2.0)
    srams = (512, 1024) if quick else (256, 512, 1024, 2048)
    batches = (8, 16) if quick else (4, 8, 16, 32)
    return SweepGrid(
        apps=APP_NAMES,
        schemes=ENCODING_SCHEMES,
        scale_factors=SCALE_FACTORS,
        pixel_counts=tuple(
            int(p) for p in np.linspace(518_400, 3840 * 2160, n_pixel_steps)
        ),
        clocks_ghz=clocks,
        grid_sram_kb=srams,
        n_engines=(8, 16),
        n_batches=batches,
    )


def build_encoding_grid(quick: bool) -> SweepGrid:
    """A 9-axis hypercube: the seed eight plus ``log2_hashmap_sizes``."""
    scales = (8, 64) if quick else SCALE_FACTORS
    pixels = (2_073_600,) if quick else (518_400, 2_073_600)
    return SweepGrid(
        apps=APP_NAMES,
        schemes=("multi_res_hashgrid",),
        scale_factors=scales,
        pixel_counts=pixels,
        clocks_ghz=(0.9, 1.695),
        grid_sram_kb=(512, 1024),
        n_engines=(8, 16),
        n_batches=(8, 16),
        log2_hashmap_sizes=(14, 19, 22),
    )


def time_naive_loop(grid: SweepGrid) -> float:
    """The seed-era sweep: one uncached scalar emulation per grid point."""
    start = time.perf_counter()
    for point in grid.points():  # 8- or 11-tuples, workload axes first
        app, scheme, scale, n_pixels = point[:4]
        emulate_uncached(app, scheme, scale, n_pixels)
    return time.perf_counter() - start


def time_engine(grid: SweepGrid, engine: str, repeats: int = 1, **kwargs) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        sweep_grid(grid, engine=engine, use_cache=False, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best


def time_cached(grid: SweepGrid) -> float:
    sweep_grid(grid)  # warm
    start = time.perf_counter()
    sweep_grid(grid)
    return time.perf_counter() - start


def time_pareto_100k() -> float:
    rng = np.random.default_rng(0)
    costs = rng.uniform(0.1, 100.0, 100_000)
    values = rng.uniform(0.1, 100.0, 100_000)
    start = time.perf_counter()
    front = pareto_front(costs, values)
    elapsed = time.perf_counter() - start
    assert front, "front of a random cloud is never empty"
    return elapsed


def check_sample_agreement(result) -> None:
    from repro.core.axes import EncodingVariant
    from repro.core.config import NFPConfig, NGPCConfig
    from repro.core.emulator import emulate_with_config

    grid = result.grid
    rng = np.random.default_rng(0)
    for _ in range(10):
        idx = tuple(rng.integers(n) for n in grid.shape)
        i, j, k, l, c, g, e, b = idx[:8]
        encoding = EncodingVariant()
        if len(idx) == 11:  # extension axes active: trailing (T, H, R)
            t, h, r = idx[8:]
            encoding = EncodingVariant(
                grid.gridtypes[t],
                grid.log2_hashmap_sizes[h],
                grid.per_level_scales[r],
            )
        nfp = NFPConfig(
            clock_ghz=grid.clocks_ghz[c],
            grid_sram_kb_per_engine=grid.grid_sram_kb[g],
            n_encoding_engines=grid.n_engines[e],
        )
        config = NGPCConfig(
            scale_factor=grid.scale_factors[k],
            nfp=nfp,
            n_pipeline_batches=grid.n_batches[b],
        )
        scalar = emulate_with_config(
            grid.apps[i], grid.schemes[j], config, grid.pixel_counts[l],
            encoding,
        )
        batched = float(result.accelerated_ms[idx])
        rel = abs(batched - scalar.accelerated_ms) / scalar.accelerated_ms
        assert rel <= 1e-9, (idx, rel)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: smaller grids, relaxed floors, no scalar arch gate",
    )
    parser.add_argument(
        "--output", default="BENCH_sweep.json",
        help="machine-readable results file (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    n_workers = os.cpu_count() or 1
    results = {"quick": args.quick, "process_workers": n_workers}
    failures = []

    # -- gate 1: vectorized vs naive on the workload grid ------------------
    n_pixel_steps = 6 if args.quick else 21
    floor = QUICK_SPEEDUP_FLOOR if args.quick else SPEEDUP_FLOOR
    grid = build_grid(n_pixel_steps)
    if not args.quick and grid.size < 1000:
        raise AssertionError(f"gate requires >= 1000 points, built {grid.size}")

    emulate_uncached("nerf", "multi_res_hashgrid", 8)  # warm calibration caches
    naive_s = time_naive_loop(grid)
    batched_s = time_engine(grid, "vectorized", repeats=3)
    cached_s = time_cached(grid)
    check_sample_agreement(sweep_grid(grid))  # memoized: the timed result
    speedup = naive_s / batched_s
    results["workload_grid"] = {
        "points": grid.size,
        "naive_s": naive_s,
        "vectorized_s": batched_s,
        "cached_requery_s": cached_s,
        "naive_points_per_sec": grid.size / naive_s,
        "vectorized_points_per_sec": grid.size / batched_s,
        "speedup_vectorized_vs_naive": speedup,
        "floor": floor,
    }

    print(f"workload grid: {grid.size} points "
          f"({len(grid.apps)} apps x {len(grid.schemes)} schemes x "
          f"{len(grid.scale_factors)} scales x {len(grid.pixel_counts)} resolutions)")
    print(f"  naive per-point loop : {naive_s * 1e3:9.2f} ms "
          f"({naive_s / grid.size * 1e6:7.1f} us/point)")
    print(f"  batched (vectorized) : {batched_s * 1e3:9.2f} ms "
          f"({batched_s / grid.size * 1e6:7.1f} us/point)")
    print(f"  memoized re-query    : {cached_s * 1e3:9.2f} ms")
    print(f"  speedup              : {speedup:9.1f}x (floor {floor:.0f}x)")
    if speedup < floor:
        failures.append(
            f"vectorized sweep only {speedup:.1f}x faster than naive (< {floor:.0f}x)"
        )

    # -- gate 2: block-parallel vs scalar on the architecture grid ---------
    arch = build_architecture_grid(args.quick)
    if not args.quick and arch.size < 50_000:
        raise AssertionError(
            f"architecture gate requires >= 50k points, built {arch.size}"
        )
    arch_shape = "x".join(str(n) for n in arch.shape)
    print(f"\narchitecture grid: {arch.size} points ({arch_shape})")
    start = time.perf_counter()
    arch_result = sweep_grid(arch, engine="vectorized", use_cache=False)
    vectorized_s = time.perf_counter() - start
    start = time.perf_counter()
    proc_result = sweep_grid(arch, engine="process", use_cache=False)
    process_s = time.perf_counter() - start
    check_sample_agreement(arch_result)
    # the timed process run must also be numerically right — a fast but
    # wrong block reassembly may not clear the gate
    np.testing.assert_allclose(
        proc_result.accelerated_ms, arch_result.accelerated_ms,
        rtol=1e-9, atol=0.0,
    )
    results["architecture_grid"] = {
        "points": arch.size,
        "shape": list(arch.shape),
        "vectorized_s": vectorized_s,
        "process_s": process_s,
        "vectorized_points_per_sec": arch.size / vectorized_s,
        "process_points_per_sec": arch.size / process_s,
    }
    print(f"  vectorized           : {vectorized_s * 1e3:9.2f} ms "
          f"({arch.size / vectorized_s / 1e6:7.2f} Mpoints/s)")
    print(f"  block-parallel       : {process_s * 1e3:9.2f} ms "
          f"({arch.size / process_s / 1e6:7.2f} Mpoints/s, "
          f"{n_workers} worker(s))")
    if args.quick:
        print("  scalar engine        : skipped (--quick)")
    else:
        scalar_s = time_engine(arch, "scalar")
        process_speedup = scalar_s / process_s
        results["architecture_grid"].update(
            scalar_s=scalar_s,
            scalar_points_per_sec=arch.size / scalar_s,
            speedup_process_vs_scalar=process_speedup,
            floor=PROCESS_SPEEDUP_FLOOR,
        )
        print(f"  scalar engine        : {scalar_s * 1e3:9.2f} ms "
              f"({scalar_s / arch.size * 1e6:7.1f} us/point)")
        print(f"  process vs scalar    : {process_speedup:9.1f}x "
              f"(floor {PROCESS_SPEEDUP_FLOOR:.0f}x)")
        if process_speedup < PROCESS_SPEEDUP_FLOOR:
            failures.append(
                f"block-parallel engine only {process_speedup:.1f}x faster than "
                f"scalar (< {PROCESS_SPEEDUP_FLOOR:.0f}x)"
            )

    # -- gate 3: the 9-axis encoding grid keeps the vectorized fast path ---
    enc_grid = build_encoding_grid(args.quick)
    enc_shape = "x".join(str(n) for n in enc_grid.shape)
    print(f"\nencoding grid: {enc_grid.size} points ({enc_shape})")
    enc_vec_s = time_engine(enc_grid, "vectorized", repeats=3)
    enc_scalar_s = time_engine(enc_grid, "scalar")
    enc_result = sweep_grid(enc_grid, engine="vectorized", use_cache=False)
    assert enc_result.accelerated_ms.ndim == 11, "extension axes inactive?"
    check_sample_agreement(enc_result)
    enc_speedup = enc_scalar_s / enc_vec_s
    enc_floor = QUICK_SPEEDUP_FLOOR if args.quick else SPEEDUP_FLOOR
    results["encoding_grid"] = {
        "points": enc_grid.size,
        "shape": list(enc_grid.shape),
        "scalar_s": enc_scalar_s,
        "vectorized_s": enc_vec_s,
        "vectorized_points_per_sec": enc_grid.size / enc_vec_s,
        "speedup_vectorized_vs_scalar": enc_speedup,
        "floor": enc_floor,
    }
    print(f"  scalar engine        : {enc_scalar_s * 1e3:9.2f} ms "
          f"({enc_scalar_s / enc_grid.size * 1e6:7.1f} us/point)")
    print(f"  batched (vectorized) : {enc_vec_s * 1e3:9.2f} ms "
          f"({enc_vec_s / enc_grid.size * 1e6:7.1f} us/point)")
    print(f"  speedup              : {enc_speedup:9.1f}x "
          f"(floor {enc_floor:.0f}x)")
    if enc_speedup < enc_floor:
        failures.append(
            f"9-axis vectorized sweep only {enc_speedup:.1f}x faster than "
            f"scalar (< {enc_floor:.0f}x)"
        )

    # -- gate 4: vectorized pareto front on 100k points --------------------
    pareto_s = time_pareto_100k()
    results["pareto_100k_s"] = pareto_s
    results["pareto_100k_ceiling_s"] = PARETO_100K_CEILING_S
    print(f"\npareto front, 100k points: {pareto_s * 1e3:.1f} ms "
          f"(ceiling {PARETO_100K_CEILING_S * 1e3:.0f} ms)")
    if pareto_s >= PARETO_100K_CEILING_S:
        failures.append(
            f"pareto_front on 100k points took {pareto_s:.2f}s (>= 1s)"
        )

    print("\nagreement: batched == scalar to 1e-9 rel (10-point sample)")
    results["failures"] = failures
    with open(args.output, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("PASS")
    return 0


def bench_sweep_scaling(benchmark):
    """pytest-benchmark hook: the batched engine on the full 1008-point grid."""
    grid = build_grid(21)
    result = benchmark(sweep_grid, grid, use_cache=False)
    assert result.grid.size >= 1000
    naive_s = time_naive_loop(grid)
    assert naive_s / time_engine(grid, "vectorized") >= SPEEDUP_FLOOR


def bench_block_parallel_architecture_grid(benchmark):
    """pytest-benchmark hook: the block-parallel engine on the arch grid."""
    grid = build_architecture_grid(quick=True)
    result = benchmark(
        sweep_grid, grid, engine="process", use_cache=False, max_workers=2
    )
    vec = sweep_grid(grid, engine="vectorized", use_cache=False)
    np.testing.assert_allclose(
        result.accelerated_ms, vec.accelerated_ms, rtol=1e-9, atol=0.0
    )


if __name__ == "__main__":
    sys.exit(main())
