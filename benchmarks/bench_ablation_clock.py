"""Ablation: NGPC operating frequency and MAC-array size.

The emulator's engine times derive from cycle counts divided by the
clock, so frequency and array-size changes flow through mechanistically.
This bench sweeps both, showing where frequency stops mattering (the
rest-kernel bound) — the kind of ablation an ISCA reviewer asks for.
"""

import pytest

from repro.core.config import NFPConfig, NGPCConfig
from repro.core.emulator import Emulator


def bench_ablation_clock_frequency(benchmark):
    """Halving the clock hurts small clusters more than big ones."""

    def sweep():
        results = {}
        for clock in (0.85, 1.275, 1.695, 2.5):
            for scale in (8, 64):
                config = NGPCConfig(
                    scale_factor=scale, nfp=NFPConfig(clock_ghz=clock)
                )
                results[(clock, scale)] = (
                    Emulator(config).run("nerf", "multi_res_hashgrid").speedup
                )
        return results

    results = benchmark(sweep)
    print()
    for scale in (8, 64):
        row = ", ".join(
            f"{clock} GHz: {results[(clock, scale)]:.1f}x"
            for clock in (0.85, 1.275, 1.695, 2.5)
        )
        print(f"  scale {scale}: {row}")
    # speedup rises with clock at every scale ...
    for scale in (8, 64):
        values = [results[(c, scale)] for c in (0.85, 1.275, 1.695, 2.5)]
        assert values == sorted(values)
    # ... but at scale 64 NeRF is rest-bound: the clock barely matters
    gain_small = results[(2.5, 8)] / results[(0.85, 8)]
    gain_large = results[(2.5, 64)] / results[(0.85, 64)]
    assert gain_small > gain_large
    assert gain_large < 1.2


def bench_ablation_pipeline_fill(benchmark):
    """The pipeline-fill cycles are negligible at frame-sized batches."""

    def sweep():
        results = {}
        for fill in (0, 24, 1000):
            config = NGPCConfig(
                scale_factor=64, nfp=NFPConfig(pipeline_fill_cycles=fill)
            )
            results[fill] = (
                Emulator(config).run("gia", "multi_res_hashgrid").accelerated_ms
            )
        return results

    results = benchmark(sweep)
    print("\n  fill cycles -> GIA ms: "
          + ", ".join(f"{f}: {t:.4f}" for f, t in results.items()))
    assert results[0] <= results[24] <= results[1000]
    # even a 1000-cycle fill moves a frame by well under 10 %
    assert results[1000] < results[0] * 1.1
