"""Section IV cache analysis and the AR/VR energy accounting."""

import pytest

from repro.apps.params import APP_NAMES, get_config
from repro.core.energy import arvr_gap_oom, energy_per_frame
from repro.gpu.memory import cache_report


def bench_l2_residency(benchmark):
    """Section IV: 3D encoding tables overflow the RTX 3090's 6 MB L2."""

    def sweep():
        return {
            app: cache_report(get_config(app, "multi_res_hashgrid"))
            for app in APP_NAMES
        }

    reports = benchmark(sweep)
    print()
    for app, r in reports.items():
        print(f"  {app}: working set {r.working_set_bytes / 1e6:5.1f} MB, "
              f"L2 hit rate {r.hit_rate:.2f}, "
              f"avg lookup {r.expected_latency_cycles:.0f} cycles")
    for app in ("nerf", "nsdf", "nvr"):
        assert not reports[app].fits_in_l2
    assert reports["gia"].fits_in_l2
    # the miss-driven latency is what makes encoding memory-bound
    assert reports["nerf"].expected_latency_cycles > 350


def bench_energy_per_frame(benchmark):
    """NGPC cuts per-frame energy by an order of magnitude or more."""

    def sweep():
        return {
            app: energy_per_frame(app, "multi_res_hashgrid", 64)
            for app in APP_NAMES
        }

    reports = benchmark(sweep)
    print()
    for app, e in reports.items():
        print(f"  {app}: {e.baseline_mj:9.1f} mJ -> {e.accelerated_mj:7.2f} mJ "
              f"({e.energy_reduction:.1f}x less, perf/W x{e.efficiency_gain:.1f})")
    for e in reports.values():
        assert e.energy_reduction > 5.0
    assert reports["nerf"].energy_reduction == max(
        e.energy_reduction for e in reports.values()
    )


def bench_arvr_gap_with_ngpc(benchmark):
    """NGPC narrows the 2-4 OOM AR/VR gap but cannot close it."""

    def sweep():
        return {
            app: (arvr_gap_oom(app), arvr_gap_oom(app, scale_factor=64))
            for app in APP_NAMES
        }

    gaps = benchmark(sweep)
    print()
    for app, (gpu, ngpc) in gaps.items():
        print(f"  {app}: GPU {gpu:+.2f} OOM -> GPU+NGPC-64 {ngpc:+.2f} OOM")
    for gpu, ngpc in gaps.values():
        assert ngpc < gpu
    assert gaps["nerf"][0] == pytest.approx(3.6, abs=0.5)
    assert gaps["nerf"][1] > 0.5  # still short of 1 W AR budgets
