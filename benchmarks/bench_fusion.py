"""Section VI: the 9.94x rest-kernel fusion speedup."""

import pytest

from repro.analysis import get_experiment
from repro.calibration import paper
from repro.core.fusion import DEFAULT_FUSION, fused_rest_time_ms
from repro.gpu.baseline import baseline_kernel_times_ms


def bench_fusion(benchmark, report):
    rows = benchmark(get_experiment("fusion").run)
    report("Rest-kernel fusion", rows)
    assert DEFAULT_FUSION.speedup == pytest.approx(
        paper.REST_FUSION_SPEEDUP, rel=0.01
    )
    # fused rest time must still be the Amdahl-limiting term for NeRF
    fused = fused_rest_time_ms("nerf", "multi_res_hashgrid")
    unfused = baseline_kernel_times_ms("nerf", "multi_res_hashgrid")["rest"]
    assert fused < unfused / 9.0
