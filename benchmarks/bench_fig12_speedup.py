"""Figure 12: end-to-end NGPC speedup vs scaling factor, with Amdahl check."""

import pytest

from repro.analysis import get_experiment
from repro.apps.params import APP_NAMES, ENCODING_SCHEMES
from repro.calibration import paper
from repro.core import amdahl_bound, emulate
from repro.core.emulator import speedup_table


def bench_fig12_speedup(benchmark, report):
    rows = benchmark(get_experiment("fig12").run)
    report("Fig. 12 end-to-end speedup (4-app averages per scale)", rows)
    for scheme, targets in paper.FIG12_AVERAGE_SPEEDUPS.items():
        table = speedup_table(scheme)
        for scale, target in targets.items():
            # averages within 10 % of the paper at every scale
            assert table[scale]["average"] == pytest.approx(target, rel=0.10)
        # shape: monotone improvement with scale
        averages = [table[s]["average"] for s in (8, 16, 32, 64)]
        assert averages == sorted(averages)
    # shape: hashgrid benefits the most (largest accelerated fraction)
    assert (
        speedup_table("multi_res_hashgrid")[64]["average"]
        > speedup_table("multi_res_densegrid")[64]["average"]
    )


def bench_fig12_amdahl_sanity(benchmark, report):
    """The Section VI sanity check: every bar under its Amdahl line."""

    def sweep():
        results = []
        for scheme in ENCODING_SCHEMES:
            for app in APP_NAMES:
                for scale in (8, 16, 32, 64):
                    results.append(emulate(app, scheme, scale))
        return results

    results = benchmark(sweep)
    violations = [r for r in results if not r.respects_amdahl()]
    assert not violations
    print(f"\n  {len(results)} emulator runs, 0 Amdahl violations")
    bound = amdahl_bound("nerf", "multi_res_hashgrid")
    best = max(
        r.speedup
        for r in results
        if r.app == "nerf" and r.scheme == "multi_res_hashgrid"
    )
    print(f"  NeRF hashgrid: best {best:.2f}x vs Amdahl bound {bound:.2f}x "
          f"(paper: up to {paper.MAX_END_TO_END_SPEEDUP}x)")
    assert best == pytest.approx(paper.MAX_END_TO_END_SPEEDUP, rel=0.05)
