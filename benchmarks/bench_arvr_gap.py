"""Section I: the 2-4 order-of-magnitude AR/VR power-efficiency gap."""

from repro.analysis import get_experiment
from repro.calibration import paper


def bench_arvr_gap(benchmark, report):
    rows = benchmark(get_experiment("arvr").run)
    report("AR/VR performance-per-watt gap (orders of magnitude)", rows)
    lo, hi = paper.ARVR_GAP_OOM_RANGE
    for row in rows:
        assert lo - 0.5 <= row.measured <= hi + 0.5, row.label
    # shape: NeRF has the largest gap
    gaps = {row.label.split()[0]: row.measured for row in rows}
    assert gaps["nerf"] == max(gaps.values())
