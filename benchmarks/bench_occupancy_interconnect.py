"""SM occupancy of the Table II kernels and the NGPC's L2-port headroom."""

import pytest

from repro.calibration import paper
from repro.core.interconnect import interconnect_report, max_fps_within_port
from repro.gpu.occupancy_model import table2_occupancy


def bench_table2_occupancy(benchmark):
    """All Table II kernels run at full SM occupancy over many waves."""

    def sweep():
        return {key: table2_occupancy(*key) for key in paper.TABLE2}

    reports = benchmark(sweep)
    heaviest = max(reports.values(), key=lambda r: r.total_threads)
    print(f"\n  heaviest launch: {heaviest.total_threads / 1e6:.1f} M threads, "
          f"{heaviest.waves:.0f} waves of {heaviest.blocks_per_sm} blocks/SM")
    for report in reports.values():
        assert report.achieved_occupancy == pytest.approx(1.0)
        assert report.waves > 1.0


def bench_interconnect_headroom(benchmark):
    """The NGPC's L2 port never saturates at the paper's operating points."""

    def sweep():
        return {
            app: (
                interconnect_report(app),
                max_fps_within_port(app, 3840 * 2160),
            )
            for app in ("nerf", "nsdf", "gia", "nvr")
        }

    results = benchmark(sweep)
    print()
    for app, (report, ceiling) in results.items():
        print(f"  {app}: port load {report.utilization:.1%}, "
              f"queueing x{report.queueing_delay_factor:.2f}, "
              f"IO ceiling {ceiling:.0f} FPS @ 4K")
    for report, ceiling in results.values():
        assert not report.saturated
        assert ceiling > 120.0
    # NeRF's two-stage traffic makes it the heaviest client
    assert results["nerf"][0].utilization == max(
        r.utilization for r, _ in results.values()
    )
