"""Figure 8: op-level breakdown of the input-encoding kernels."""

from repro.analysis import get_experiment
from repro.gpu.profiler import op_breakdown


def bench_fig8_ops(benchmark, report):
    rows = benchmark(get_experiment("fig8").run)
    report("Fig. 8 encoding-kernel op breakdown (% of kernel cycles)", rows)
    for scheme in ("multi_res_hashgrid", "multi_res_densegrid", "low_res_densegrid"):
        b = op_breakdown(scheme)
        # shape: grid lookups dominate; modulo is a top-2 op (Section IV)
        assert b["grid_lookups"] == max(b.values())
        assert b["modulo"] >= sorted(b.values())[-3]
    # shape: hash cycles exist only for the hashgrid scheme
    assert op_breakdown("multi_res_hashgrid")["hash_function"] > 0
    assert op_breakdown("multi_res_densegrid")["hash_function"] == 0
    assert op_breakdown("low_res_densegrid")["hash_function"] == 0
