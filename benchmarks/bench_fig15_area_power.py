"""Figure 15: NGPC area and power, normalized to the RTX 3090 die."""

import pytest

from repro.analysis import get_experiment
from repro.calibration import paper
from repro.core import NGPCConfig, ngpc_area_power
from repro.core.area_power import nfp_area_mm2_45nm


def bench_fig15_area_power(benchmark, report):
    rows = benchmark(get_experiment("fig15").run)
    report("Fig. 15 NGPC area/power overhead vs RTX 3090 (7 nm)", rows)
    for scale in (8, 16, 32, 64):
        r = ngpc_area_power(NGPCConfig(scale_factor=scale))
        assert r.area_overhead_pct == pytest.approx(
            paper.FIG15_AREA_OVERHEAD_PCT[scale], rel=0.05
        )
        assert r.power_overhead_pct == pytest.approx(
            paper.FIG15_POWER_OVERHEAD_PCT[scale], rel=0.05
        )
    # shape: overheads are linear in the NFP count
    a8 = ngpc_area_power(NGPCConfig(scale_factor=8))
    a64 = ngpc_area_power(NGPCConfig(scale_factor=64))
    assert a64.area_mm2_7nm == pytest.approx(8 * a8.area_mm2_7nm)
    # shape: grid SRAM dominates the NFP floorplan
    components = nfp_area_mm2_45nm()
    assert components["grid_sram"] > 0.5 * components["total"]
