"""Section II-A for 3D: parametric hashgrid vs vanilla-NeRF frequency
encoding on the same NeRF training budget."""

import numpy as np

from repro.apps import NeRFApp
from repro.encodings import FrequencyEncoding

STEPS = 60
BATCH = 1024


def _train(pos_encoding_override=None, seed=0):
    app = NeRFApp(seed=seed, pos_encoding_override=pos_encoding_override)
    history = app.train(steps=STEPS, batch_size=BATCH)
    # score the learned density field directly (shared scene, fixed probe)
    rng = np.random.default_rng(99)
    pts = rng.uniform(0, 1, (2048, 3)).astype(np.float32)
    dirs = np.tile([[0.0, 0.0, 1.0]], (2048, 1)).astype(np.float32)
    sigma, rgb = app.query(pts, dirs)
    sigma_truth = app.scene.density(pts)
    rgb_truth = app.scene.color(pts, dirs)
    corr = float(np.corrcoef(sigma, sigma_truth)[0, 1])
    rgb_mse = float(np.mean((rgb - rgb_truth) ** 2))
    return {"density_corr": corr, "rgb_mse": rgb_mse, "final_loss": history[-1]}


def bench_vanilla_nerf_vs_hashgrid(benchmark):
    def run():
        # frequency encoding sized to vanilla NeRF: 10 octaves -> 60 dims
        return {
            "hashgrid": _train(None),
            "frequency": _train(FrequencyEncoding(3, num_frequencies=10)),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, m in results.items():
        print(f"  {name:9s}: density corr {m['density_corr']:.3f}, "
              f"rgb mse {m['rgb_mse']:.4f}, final loss {m['final_loss']:.4f}")
    print("  (our synthetic radiance field is smooth, so the two encodings "
          "are comparable here; the parametric advantage on high-frequency "
          "content is demonstrated by bench_encoding_comparison on GIA)")
    # both encodings train the same NeRF pipeline successfully ...
    for m in results.values():
        assert m["density_corr"] > 0.8
        assert m["rgb_mse"] < 0.05
    # ... and the hashgrid stays at least competitive on a smooth scene
    assert results["hashgrid"]["rgb_mse"] < results["frequency"]["rgb_mse"] * 2.0
