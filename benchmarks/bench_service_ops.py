#!/usr/bin/env python
"""Load probe of the service ops layer: quota fairness under a flood.

One misbehaving tenant fires hundreds of concurrent requests — cold
sweeps that saturate the global cold-evaluation cap and its bounded
queue — while a well-behaved tenant keeps issuing cached pareto
queries against the same server.  Three gates guard the multi-tenant
acceptance bar:

1. **Isolation**: the well-behaved tenant's cached-query p99 stays
   under the ceiling *while the flood is in flight* — a hostile
   tenant saturating the evaluation slots must not move a cached
   reader's latency.
2. **Back-pressure**: the flood actually hits the admission layer —
   at least one structured 429 ``overloaded`` (cold queue full) and at
   least one 429 ``rate-limited`` (token bucket dry) are observed, and
   every rejection carries a ``retry_after_s`` hint.
3. **No collateral damage**: every one of the well-behaved tenant's
   requests succeeds (the flood's 429s are the *flooder's* problem).

Results are written to ``BENCH_service_ops.json`` (latency quantiles,
rejection counts, admission counters) and uploaded as a CI artifact so
the isolation trajectory stays machine-readable across PRs.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_service_ops.py          # full gate
    PYTHONPATH=src python benchmarks/bench_service_ops.py --quick  # CI smoke

Exits non-zero when a gate is missed.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import statistics
import sys
import tempfile
import time

from repro.core.dse import SweepGrid, sweep_grid
from repro.service import (
    JsonLogger,
    OpsLayer,
    ServiceClient,
    ServiceError,
    SweepService,
)
from repro.service.http import start_http_server

#: acceptance ceilings for the well-behaved tenant's cached queries,
#: measured while the flood is in flight
CACHED_P50_CEILING_S = 0.050
CACHED_P99_CEILING_S = 0.250

#: how long each cold evaluation is pinned in the executor, so the
#: flood reliably saturates the single cold slot for the whole probe
COLD_FLOOR_S = 0.25

TENANTS = {
    "tenants": [
        # the flooder has a real (generous) rate limit so the probe
        # exercises both 429 shapes: rate-limited and overloaded
        {"name": "hog", "key": "ak-hog", "rate_per_s": 200.0, "burst": 40},
        {"name": "steady", "key": "ak-steady"},
    ],
    "limits": {"max_cold_sweeps": 1, "cold_queue_depth": 2},
}

QUERY_GRID = SweepGrid(
    scale_factors=(8, 16, 32, 64),
    clocks_ghz=(0.8, 1.0, 1.2, 1.695),
    grid_sram_kb=(512, 1024),
    n_batches=(8, 16),
)


def cold_grids(n: int):
    """``n`` distinct small grids (distinct fingerprints, all cold)."""
    return [
        SweepGrid(apps=("nerf",), scale_factors=(8,),
                  clocks_ghz=(0.5 + 0.001 * i,))
        for i in range(n)
    ]


def quantile(samples, q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


async def probe(quick: bool, tenants_path: str) -> dict:
    n_flood = 120 if quick else 400
    n_steady = 40 if quick else 100

    def slow_cold(grid, engine="vectorized", ngpc=None, max_workers=None):
        result = sweep_grid(grid, engine="vectorized", ngpc=ngpc,
                            use_cache=False)
        time.sleep(COLD_FLOOR_S)
        return result

    service = SweepService(engine="vectorized", sweep_fn=slow_cold)
    # errors only: ~n_flood access-log lines would drown the report
    ops = OpsLayer(tenants_path=tenants_path,
                   logger=JsonLogger(level="error"))
    server = await start_http_server(service, "127.0.0.1", 0, ops=ops)
    steady = ServiceClient("127.0.0.1", server.port, api_key="ak-steady")
    try:
        # warm the steady tenant's query grid before the flood starts
        await steady.sweep(QUERY_GRID.to_dict())

        outcomes = {"completed": 0, "overloaded": 0,
                    "rate_limited": 0, "other": 0}
        missing_retry_hints = 0

        async def flood_one(grid) -> None:
            client = ServiceClient("127.0.0.1", server.port,
                                   api_key="ak-hog")
            try:
                await client.sweep(grid.to_dict())
                outcomes["completed"] += 1
            except ServiceError as error:
                nonlocal missing_retry_hints
                if error.code in ("overloaded", "rate-limited"):
                    outcomes[error.code.replace("-", "_")] += 1
                    if not error.details.get("retry_after_s"):
                        missing_retry_hints += 1
                else:
                    outcomes["other"] += 1
            finally:
                await client.close()

        flood = [asyncio.ensure_future(flood_one(grid))
                 for grid in cold_grids(n_flood)]
        await asyncio.sleep(0.05)  # the flood owns the cold slot + queue

        latencies = []
        for _ in range(n_steady):
            start = time.perf_counter()
            front = await steady.pareto_front(QUERY_GRID.to_dict())
            latencies.append(time.perf_counter() - start)
            assert front, "cached pareto answered nothing"
        flood_live = sum(1 for task in flood if not task.done())
        await asyncio.gather(*flood)

        stats = await steady.stats()
        return {
            "n_flood_requests": n_flood,
            "n_steady_queries": n_steady,
            "query_grid_points": QUERY_GRID.size,
            "steady_query_s_p50": quantile(latencies, 0.50),
            "steady_query_s_p99": quantile(latencies, 0.99),
            "steady_query_s_max": max(latencies),
            "flood_outcomes": outcomes,
            "flood_live_during_queries": flood_live,
            "missing_retry_hints": missing_retry_hints,
            "admission": stats["ops"]["admission"],
            "http_metrics": stats["ops"]["http_metrics"],
        }
    finally:
        await steady.close()
        await server.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--output", default="BENCH_service_ops.json")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        tenants_path = os.path.join(tmp, "tenants.json")
        with open(tenants_path, "w") as handle:
            json.dump(TENANTS, handle)
        results = asyncio.run(probe(args.quick, tenants_path))
    results["quick"] = args.quick

    outcomes = results["flood_outcomes"]
    print(f"flood: {results['n_flood_requests']} concurrent cold sweeps -> "
          f"{outcomes['completed']} completed, "
          f"{outcomes['overloaded']} overloaded, "
          f"{outcomes['rate_limited']} rate-limited, "
          f"{outcomes['other']} other")
    print(f"steady tenant: {results['n_steady_queries']} cached queries on "
          f"{results['query_grid_points']:,} points while "
          f"{results['flood_live_during_queries']} flood requests in flight")
    print(f"cached query under flood: "
          f"{results['steady_query_s_p50'] * 1000:.2f} ms p50, "
          f"{results['steady_query_s_p99'] * 1000:.2f} ms p99, "
          f"{results['steady_query_s_max'] * 1000:.2f} ms max")

    failures = []
    if results["steady_query_s_p50"] >= CACHED_P50_CEILING_S:
        failures.append(
            f"isolation gate: steady p50 "
            f"{results['steady_query_s_p50'] * 1000:.2f} ms "
            f"(ceiling {CACHED_P50_CEILING_S * 1000:.0f} ms)"
        )
    if results["steady_query_s_p99"] >= CACHED_P99_CEILING_S:
        failures.append(
            f"isolation gate: steady p99 "
            f"{results['steady_query_s_p99'] * 1000:.2f} ms "
            f"(ceiling {CACHED_P99_CEILING_S * 1000:.0f} ms)"
        )
    if not results["flood_live_during_queries"]:
        failures.append("flood drained before the steady queries ran "
                        "(the probe measured an idle server)")
    if outcomes["overloaded"] < 1:
        failures.append("back-pressure gate: no 429 'overloaded' observed")
    if outcomes["rate_limited"] < 1:
        failures.append("back-pressure gate: no 429 'rate-limited' observed")
    if results["missing_retry_hints"]:
        failures.append(
            f"{results['missing_retry_hints']} rejections lacked a "
            f"retry_after_s hint"
        )
    if outcomes["other"]:
        failures.append(f"{outcomes['other']} flood requests failed with "
                        f"unexpected errors")
    results["failures"] = failures

    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all service ops gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
