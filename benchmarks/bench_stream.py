#!/usr/bin/env python
"""Streaming-sweep gates: time-to-first-front and frame/pickle parity.

Two acceptance bars for the streaming result path and the binary frame
transport that replaced the pickle wire protocol:

1. **Time to first front.**  On a >= 500k-point architecture grid, the
   streaming evaluator must yield its first exact partial Pareto front
   in under **10%** of the full vectorized sweep's wall clock.  The win
   is structural: blocks are evaluated in window-major order (every
   (app, scheme) pair of one resolution window back to back), so full
   app coverage — and with it a non-empty exact front — lands after the
   first window instead of after the whole grid.

2. **Frame/pickle parity.**  A representative cluster result message
   (float arrays, placements, an NGPCConfig) round-tripped through the
   :mod:`repro.transport` frame codec must be **bit-identical** to the
   same message round-tripped through the retired pickle path: equal
   dtypes, equal shapes, equal payload bytes.  (Pickle is banned from
   ``src/repro/service`` — this benchmark is the one place it still
   runs, as the reference the frames are measured against.)

Timings use best-of-N (the standard low-noise estimator on a shared CI
core); per-iteration walls are recorded in ``BENCH_stream.json`` and
uploaded as a CI artifact so the streaming trajectory stays
machine-readable across PRs.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_stream.py          # full gate
    PYTHONPATH=src python benchmarks/bench_stream.py --quick  # CI smoke

Exits non-zero when a gate is missed.
"""

from __future__ import annotations

import argparse
import json
import pickle  # the retired wire format: kept here as the parity reference
import statistics
import sys
import time

import numpy as np

from repro.api import LocalBackend, SweepGrid
from repro.core import NGPCConfig
from repro.core.dse import sweep_grid
from repro.transport import decode_message, encode_message

#: first partial front must land within this fraction of the dense wall
MAX_FIRST_FRONT_FRACTION = 0.10
#: the gate is defined on a grid at least this large
MIN_GRID_POINTS = 500_000


def build_grid(iteration: int) -> SweepGrid:
    """A 3,276,800-point grid, distinct per iteration (cold everywhere)."""
    return SweepGrid(
        schemes=("multi_res_hashgrid",),
        scale_factors=(8, 16, 32, 64),
        pixel_counts=(100_000, 1_000_000, 2_073_600, 3840 * 2160),
        clocks_ghz=tuple(
            float(c) for c in np.linspace(0.6, 1.695 + iteration * 1e-6, 32)
        ),
        grid_sram_kb=tuple(16 << k for k in range(16)),  # 16 KB .. 512 MB
        n_engines=(2, 4, 6, 8, 12, 16, 24, 32, 48, 64),
        n_batches=(1, 2, 4, 6, 8, 12, 16, 24, 32, 48),
    )


def probe_streaming(iterations: int) -> dict:
    grid_points = build_grid(0).size
    assert grid_points >= MIN_GRID_POINTS, grid_points

    # -- dense baseline: one vectorized whole-grid call -------------------
    dense_s = []
    for i in range(iterations):
        grid = build_grid(i).resolve()
        start = time.perf_counter()
        sweep_grid(grid, engine="vectorized", use_cache=False)
        dense_s.append(time.perf_counter() - start)

    # -- streaming: time until the first exact partial front --------------
    # (a fresh perturbed grid per iteration, so nothing is served warm;
    # the generator is abandoned after the first front — the quantity
    # under test is how soon a watcher sees a usable answer)
    backend = LocalBackend(engine="vectorized", use_cache=False)
    scheme, n_pixels = "multi_res_hashgrid", 2_073_600
    first_front_s = []
    first_front_points = None
    for i in range(-1, iterations):
        # iteration -1 is an untimed warm-up (first-touch allocation and
        # import costs stay out of the latency gate, as in bench_cluster)
        grid = build_grid(1000 + i)
        start = time.perf_counter()
        stream = backend.stream_events(grid, scheme=scheme, n_pixels=n_pixels)
        try:
            for event in stream:
                if event["event"] == "front":
                    if i >= 0:
                        first_front_s.append(time.perf_counter() - start)
                        first_front_points = len(event["points"])
                    break
        finally:
            stream.close()

    # -- one streamed run to completion: the final front must match ------
    # the dense evaluator's answer exactly (same grid, same layout)
    parity_grid = build_grid(2000).resolve()
    start = time.perf_counter()
    final_front = None
    for event in backend.stream_events(
        parity_grid, scheme=scheme, n_pixels=n_pixels
    ):
        if event["event"] == "front":
            final_front = event["points"]
    streamed_total_s = time.perf_counter() - start
    dense_front = [
        p.to_dict()
        for p in sweep_grid(
            parity_grid, engine="vectorized", use_cache=False
        ).pareto_front(scheme, n_pixels=n_pixels)
    ]
    assert final_front == dense_front, "streamed final front != dense front"

    return {
        "grid_points": grid_points,
        "iterations": iterations,
        "dense_s": dense_s,
        "dense_s_best": min(dense_s),
        "dense_s_median": statistics.median(dense_s),
        "first_front_s": first_front_s,
        "first_front_s_best": min(first_front_s),
        "first_front_s_median": statistics.median(first_front_s),
        "first_front_points": first_front_points,
        "first_front_fraction": min(first_front_s) / min(dense_s),
        "streamed_total_s": streamed_total_s,
        "final_front_matches_dense": True,
    }


def probe_transport() -> dict:
    """Frame round trip vs the retired pickle path: bit-identical, timed."""
    rng = np.random.default_rng(7)
    message = {
        "job_id": "bench-stream",
        "task_id": 17,
        "placement": ((0, 1), (0, 1), (0, 12), (0, 12), (0, 10), (0, 10)),
        "ngpc": NGPCConfig(scale_factor=16),
        "block": {
            "baseline_ms": rng.random((12, 12, 10, 10)),
            "accelerated_ms": rng.random((12, 12, 10, 10)),
            "amdahl_bound": rng.random((12, 12, 10, 10)),
            "iterations": rng.integers(1, 64, (12, 12, 10, 10)),
        },
    }

    frame_bytes = encode_message(message)
    from_frame = decode_message(frame_bytes)
    pickle_bytes = pickle.dumps(message)
    from_pickle = pickle.loads(pickle_bytes)

    mismatches = []
    for name in message["block"]:
        a, b = from_frame["block"][name], from_pickle["block"][name]
        if a.dtype != b.dtype or a.shape != b.shape:
            mismatches.append(f"{name}: dtype/shape diverge")
        elif a.tobytes() != b.tobytes():
            mismatches.append(f"{name}: payload bytes diverge")
    if from_frame["placement"] != from_pickle["placement"]:
        mismatches.append("placement tuples diverge")
    if from_frame["ngpc"] != from_pickle["ngpc"]:
        mismatches.append("NGPCConfig diverges")

    def best_of(fn, n=30):
        walls = []
        for _ in range(n):
            start = time.perf_counter()
            fn()
            walls.append(time.perf_counter() - start)
        return min(walls)

    return {
        "frame_bytes": len(frame_bytes),
        "pickle_bytes": len(pickle_bytes),
        "frame_encode_s": best_of(lambda: encode_message(message)),
        "frame_decode_s": best_of(lambda: decode_message(frame_bytes)),
        "pickle_encode_s": best_of(lambda: pickle.dumps(message)),
        "pickle_decode_s": best_of(lambda: pickle.loads(pickle_bytes)),
        "mismatches": mismatches,
        "bit_identical": not mismatches,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: fewer iterations, same gates")
    parser.add_argument("--output", default="BENCH_stream.json")
    args = parser.parse_args()

    results = probe_streaming(iterations=2 if args.quick else 3)
    results["transport"] = probe_transport()
    results["quick"] = args.quick

    print(f"grid: {results['grid_points']:,} points")
    print(f"dense vectorized sweep:  {results['dense_s_best'] * 1000:8.1f} ms "
          f"best ({results['dense_s_median'] * 1000:.1f} ms median)")
    print(f"first streamed front:    "
          f"{results['first_front_s_best'] * 1000:8.1f} ms best "
          f"({results['first_front_s_median'] * 1000:.1f} ms median; "
          f"{results['first_front_points']} points)")
    print(f"fraction: {100 * results['first_front_fraction']:.1f}% of the "
          f"dense wall (gate < {100 * MAX_FIRST_FRONT_FRACTION:.0f}%); "
          f"streamed-to-completion {results['streamed_total_s']:.2f}s")
    t = results["transport"]
    print(f"transport: frame {t['frame_bytes']:,} B vs pickle "
          f"{t['pickle_bytes']:,} B; decode "
          f"{t['frame_decode_s'] * 1e6:.0f} us vs "
          f"{t['pickle_decode_s'] * 1e6:.0f} us; "
          f"bit-identical: {t['bit_identical']}")

    failures = []
    if results["grid_points"] < MIN_GRID_POINTS:
        failures.append(
            f"grid gate: {results['grid_points']} points "
            f"(need >= {MIN_GRID_POINTS})"
        )
    if results["first_front_fraction"] >= MAX_FIRST_FRONT_FRACTION:
        failures.append(
            f"latency gate: first front at "
            f"{100 * results['first_front_fraction']:.1f}% of the dense wall "
            f"(ceiling {100 * MAX_FIRST_FRONT_FRACTION:.0f}%)"
        )
    if not t["bit_identical"]:
        failures.append(
            "parity gate: frame round trip diverges from pickle: "
            + "; ".join(t["mismatches"])
        )
    results["failures"] = failures

    with open(args.output, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all streaming gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
