"""Cycle-level validation of the encoding engine's throughput assumption."""

import pytest

from repro.core.pipeline_sim import (
    EncodingPipelineSimulator,
    PipelineConfig,
    validate_throughput_assumption,
)


def bench_pipeline_throughput_validation(benchmark):
    """The analytic model assumes 1 set/cycle; the simulator confirms it."""
    throughput = benchmark(validate_throughput_assumption, 2000)
    print(f"\n  simulated throughput (8 corners, 8 banks): {throughput:.4f} sets/cycle")
    assert throughput > 0.99


def bench_pipeline_bank_ablation(benchmark):
    """SRAM banking is load-bearing: fewer banks serialize the lookups."""

    def sweep():
        return {
            banks: validate_throughput_assumption(1000, corners=8, banks=banks)
            for banks in (1, 2, 4, 8, 16)
        }

    results = benchmark(sweep)
    print("\n  banks -> throughput: "
          + ", ".join(f"{b}: {t:.3f}" for b, t in results.items()))
    assert results[8] > 0.99
    assert results[4] == pytest.approx(0.5, abs=0.02)
    assert results[1] == pytest.approx(0.125, abs=0.02)
    assert results[16] <= 1.0 + 1e-9  # no benefit past one bank per corner


def bench_pipeline_spill_sensitivity(benchmark):
    """L2 spills stall the whole set: throughput collapses quickly."""

    def sweep():
        results = {}
        for p in (0.0, 0.01, 0.05, 0.2):
            sim = EncodingPipelineSimulator(
                PipelineConfig(spill_probability=p), seed=3
            )
            results[p] = sim.run(1500).throughput
        return results

    results = benchmark(sweep)
    print("\n  spill prob -> throughput: "
          + ", ".join(f"{p}: {t:.3f}" for p, t in results.items()))
    values = [results[p] for p in (0.0, 0.01, 0.05, 0.2)]
    assert values == sorted(values, reverse=True)
    # this is why the paper sizes the grid SRAM to hold a whole level
    assert results[0.05] < 0.5 * results[0.0]
