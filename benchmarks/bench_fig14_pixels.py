"""Figure 14: pixels renderable per FPS target, with and without NGPC."""

from repro.analysis import get_experiment
from repro.calibration import paper
from repro.core.emulator import max_pixels_within_budget


def bench_fig14_pixels(benchmark, report):
    rows = benchmark(get_experiment("fig14").run)
    report("Fig. 14 renderable pixels per FPS target (NGPC-64)", rows[-4:])
    # headline (hashgrid): NeRF 4K@30; GIA/NVR 8K@120; NSDF within 5 % of 8K
    assert max_pixels_within_budget("nerf", "multi_res_hashgrid", 64, 30) >= (
        paper.RESOLUTIONS["4k"]
    )
    for app in ("gia", "nvr"):
        assert max_pixels_within_budget(app, "multi_res_hashgrid", 64, 120) >= (
            paper.RESOLUTIONS["8k"]
        )
    assert max_pixels_within_budget("nsdf", "multi_res_hashgrid", 64, 120) >= (
        0.95 * paper.RESOLUTIONS["8k"]
    )
    # shape: NGPC always beats the GPU baseline, at every FPS target
    for app in ("nerf", "nsdf", "gia", "nvr"):
        for fps in paper.FPS_TARGETS:
            with_ngpc = max_pixels_within_budget(app, "multi_res_hashgrid", 64, fps)
            without = max_pixels_within_budget(
                app, "multi_res_hashgrid", 64, fps, use_ngpc=False
            )
            assert with_ngpc > without
    # shape: the baseline GPU cannot do NeRF 4K@60 but NGPC-64 can
    assert max_pixels_within_budget(
        "nerf", "multi_res_hashgrid", 64, 60, use_ngpc=False
    ) < paper.RESOLUTIONS["4k"]
