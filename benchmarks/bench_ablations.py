"""Ablations of the NGPC design choices called out in DESIGN.md.

Quantifies what each mechanism buys: fusing the encoding and MLP engines
(no DRAM round-trip of encoded features), fusing the rest kernels
(the 9.94x path), and the Fig. 10-b batch pipeline overlap — plus the
sensitivity to the pipeline batch count and the L2 spill penalty.
"""

import pytest

from repro.analysis import format_table
from repro.apps.params import APP_NAMES, get_config
from repro.core import NGPCConfig
from repro.core.emulator import Emulator
from repro.core.encoding_engine import encoding_engine_time_ms

SCHEME = "multi_res_hashgrid"


def bench_ablation_design_features(benchmark):
    """Full design vs each feature disabled, per application."""
    emulator = Emulator(NGPCConfig(scale_factor=64))

    def sweep():
        rows = {}
        for app in APP_NAMES:
            rows[app] = {
                "full": emulator.run(app, SCHEME).speedup,
                "no_engine_fusion": emulator.run(
                    app, SCHEME, fuse_engines=False
                ).speedup,
                "no_rest_fusion": emulator.run(app, SCHEME, fuse_rest=False).speedup,
                "no_overlap": emulator.run(app, SCHEME, overlap=False).speedup,
            }
        return rows

    rows = benchmark(sweep)
    table = [
        [app] + [f"{rows[app][k]:.1f}x" for k in
                 ("full", "no_engine_fusion", "no_rest_fusion", "no_overlap")]
        for app in APP_NAMES
    ]
    print("\n" + format_table(
        ["app", "full", "-engine fusion", "-rest fusion", "-overlap"],
        table,
        title="NGPC-64 speedup ablations (hashgrid)",
    ))
    for app in APP_NAMES:
        r = rows[app]
        # every feature contributes; rest fusion is the biggest lever
        assert r["full"] >= r["no_engine_fusion"]
        assert r["full"] >= r["no_overlap"]
        assert r["full"] > 2 * r["no_rest_fusion"]


def bench_ablation_pipeline_batches(benchmark):
    """More pipeline batches amortize the fill; returns diminish."""

    def sweep():
        speedups = {}
        for batches in (1, 2, 4, 8, 16, 32):
            config = NGPCConfig(scale_factor=64, n_pipeline_batches=batches)
            speedups[batches] = Emulator(config).run("nerf", SCHEME).speedup
        return speedups

    speedups = benchmark(sweep)
    print("\n  batches -> speedup: "
          + ", ".join(f"{b}: {s:.1f}x" for b, s in speedups.items()))
    values = [speedups[b] for b in (1, 2, 4, 8, 16, 32)]
    assert values == sorted(values)  # monotone improvement
    # diminishing returns: the last doubling gains less than the first
    assert (values[1] - values[0]) > (values[-1] - values[-2])


def bench_ablation_spill_penalty(benchmark):
    """Dense-grid levels that exceed the grid SRAM pay the L2 penalty."""
    config = get_config("nerf", "multi_res_densegrid")

    def sweep():
        times = {}
        for penalty in (1.0, 2.0, 4.0, 8.0):
            ngpc = NGPCConfig(scale_factor=64, l2_spill_penalty=penalty)
            times[penalty] = encoding_engine_time_ms(config, ngpc=ngpc)
        return times

    times = benchmark(sweep)
    print("\n  spill penalty -> encoding ms: "
          + ", ".join(f"{p}: {t:.4f}" for p, t in times.items()))
    values = [times[p] for p in (1.0, 2.0, 4.0, 8.0)]
    assert values == sorted(values)
    # hashgrid tables fit the SRAM, so they are insensitive to the penalty
    hash_config = get_config("nerf", "multi_res_hashgrid")
    t1 = encoding_engine_time_ms(
        hash_config, ngpc=NGPCConfig(scale_factor=64, l2_spill_penalty=1.0)
    )
    t8 = encoding_engine_time_ms(
        hash_config, ngpc=NGPCConfig(scale_factor=64, l2_spill_penalty=8.0)
    )
    assert t1 == pytest.approx(t8)


def bench_ablation_grid_sram_size(benchmark):
    """Halving the grid SRAM makes the hashgrid levels spill."""
    from repro.core.config import NFPConfig
    from repro.core.encoding_engine import level_spill_fraction

    config = get_config("nerf", "multi_res_hashgrid")

    def sweep():
        fractions = {}
        for kb in (256, 512, 1024, 2048):
            ngpc = NGPCConfig(
                scale_factor=64, nfp=NFPConfig(grid_sram_kb_per_engine=kb)
            )
            fractions[kb] = level_spill_fraction(config, ngpc)
        return fractions

    fractions = benchmark(sweep)
    print("\n  grid SRAM KB -> spill fraction: "
          + ", ".join(f"{kb}: {f:.2f}" for kb, f in fractions.items()))
    assert fractions[1024] == 0.0  # the paper's design point: no spill
    assert fractions[512] > 0.0  # halved SRAM spills the T=2^19 levels
    values = [fractions[kb] for kb in (2048, 1024, 512, 256)]
    assert values == sorted(values)
