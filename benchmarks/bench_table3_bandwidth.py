"""Table III: NGPC IO bandwidth and data access time."""

import pytest

from repro.analysis import get_experiment
from repro.calibration import paper
from repro.core.ngpc import bandwidth_model


def bench_table3_bandwidth(benchmark, report):
    rows = benchmark(get_experiment("table3").run)
    report("Table III NGPC IO bandwidth @ 4K 60 FPS", rows)
    for app, (in_bw, out_bw, total_bw, access) in paper.TABLE3.items():
        r = bandwidth_model(app)
        assert r.input_gbps == pytest.approx(in_bw, rel=0.01)
        assert r.total_gbps == pytest.approx(total_bw, rel=0.01)
        assert r.access_time_ms == pytest.approx(access, rel=0.01)
    # Section VI shape: NeRF needs ~24 % of GPU bandwidth, others ~7 %
    assert bandwidth_model("nerf").fraction_of_gpu_bandwidth == pytest.approx(
        0.24, abs=0.02
    )
    for app in ("nsdf", "gia", "nvr"):
        assert bandwidth_model(app).fraction_of_gpu_bandwidth == pytest.approx(
            0.07, abs=0.01
        )
