#!/usr/bin/env python
"""Overhead gate of the ``repro.api`` Session facade.

The facade must stay free: a typed entry point that costs measurable
wall-clock over calling :func:`~repro.core.dse.sweep_grid` directly
would push hot-path consumers back to the raw engines and re-fragment
the API surface.  Two measurements on a >= 10k-point grid:

1. **Cold sweep overhead** (the gate): median wall time of
   ``Session.sweep`` vs a direct ``sweep_grid`` call on the identical
   normalized grid, caches off, interleaved samples.  Must stay
   **< 5 %**.
2. **Warm (memoized) path**: the same comparison with the sweep memo
   hot, plus the per-query cost of ``Sweep.pareto()`` vs
   ``SweepResult.pareto_front()`` — reported for the record (absolute
   microseconds; no gate, the numbers sit at timer noise).

Results are written to ``BENCH_api.json`` and uploaded as a CI artifact
so the facade-cost trajectory stays machine-readable across PRs.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_api.py          # full gate
    PYTHONPATH=src python benchmarks/bench_api.py --quick  # CI smoke

Exits non-zero when the gate is missed.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from repro.api import Session, SweepGrid
from repro.core.dse import sweep_grid
from repro.gpu.baseline import FHD_PIXELS

#: the acceptance ceiling on facade overhead over the direct engine call
OVERHEAD_CEILING = 0.05


def build_grid(quick: bool) -> SweepGrid:
    """>= 10k points full (10240), ~1k in --quick CI smoke."""
    return SweepGrid(
        scale_factors=(8, 16, 32, 64),
        pixel_counts=(FHD_PIXELS, 3840 * 2160),
        clocks_ghz=(0.8, 1.0, 1.2, 1.695) if quick else (0.8, 1.0, 1.2, 1.4, 1.695),
        grid_sram_kb=(512, 1024) if quick else (256, 512, 1024, 2048),
        n_engines=(8, 16) if quick else (4, 8, 16, 32),
        n_batches=(8, 16) if quick else (4, 8, 16, 32),
    )


def timed(fn, repeats: int) -> list:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return samples


def probe(quick: bool) -> dict:
    grid = build_grid(quick).normalized()  # the facade's canonical grid
    repeats = 3 if quick else 5

    # -- cold sweeps, interleaved so drift hits both paths equally ---------
    direct_cold, facade_cold = [], []
    session_cold = Session.local(engine="vectorized", use_cache=False)
    for _ in range(repeats):
        direct_cold += timed(
            lambda: sweep_grid(grid, engine="vectorized", use_cache=False), 1
        )
        facade_cold += timed(lambda: session_cold.sweep(grid), 1)
    direct_cold_s = statistics.median(direct_cold)
    facade_cold_s = statistics.median(facade_cold)
    cold_overhead = facade_cold_s / direct_cold_s - 1.0

    # -- warm (memoized) path ----------------------------------------------
    session_warm = Session.local(engine="vectorized")
    sweep_grid(grid, engine="vectorized")  # prime the memo
    session_warm.sweep(grid)
    warm_repeats = 100 if quick else 300
    direct_warm_s = statistics.median(
        timed(lambda: sweep_grid(grid, engine="vectorized"), warm_repeats)
    )
    facade_warm_s = statistics.median(
        timed(lambda: session_warm.sweep(grid), warm_repeats)
    )

    # -- per-query cost through the handle ----------------------------------
    handle = session_warm.sweep(grid)
    result = handle.result
    scheme = grid.schemes[0]
    query_repeats = 20 if quick else 50
    direct_pareto_s = statistics.median(
        timed(lambda: result.pareto_front(scheme, FHD_PIXELS), query_repeats)
    )
    facade_pareto_s = statistics.median(
        timed(lambda: handle.pareto(n_pixels=FHD_PIXELS), query_repeats)
    )

    return {
        "grid_points": grid.size,
        "cold_direct_s": direct_cold_s,
        "cold_facade_s": facade_cold_s,
        "cold_overhead_pct": cold_overhead * 100.0,
        "warm_direct_s": direct_warm_s,
        "warm_facade_s": facade_warm_s,
        "warm_facade_extra_us": (facade_warm_s - direct_warm_s) * 1e6,
        "pareto_direct_s": direct_pareto_s,
        "pareto_facade_s": facade_pareto_s,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--output", default="BENCH_api.json")
    args = parser.parse_args()

    results = probe(args.quick)
    results["quick"] = args.quick
    results["overhead_ceiling_pct"] = OVERHEAD_CEILING * 100.0

    print(f"grid: {results['grid_points']:,} points")
    print(f"cold sweep:   direct {results['cold_direct_s'] * 1000:8.1f} ms, "
          f"Session {results['cold_facade_s'] * 1000:8.1f} ms "
          f"({results['cold_overhead_pct']:+.2f}% overhead)")
    print(f"warm sweep:   direct {results['warm_direct_s'] * 1e6:8.1f} us, "
          f"Session {results['warm_facade_s'] * 1e6:8.1f} us "
          f"({results['warm_facade_extra_us']:+.1f} us facade cost)")
    print(f"pareto query: direct {results['pareto_direct_s'] * 1e6:8.1f} us, "
          f"handle {results['pareto_facade_s'] * 1e6:8.1f} us")

    failures = []
    if results["grid_points"] < (1_000 if args.quick else 10_000):
        failures.append("grid too small for the gate")
    if results["cold_overhead_pct"] >= OVERHEAD_CEILING * 100.0:
        failures.append(
            f"overhead gate: Session.sweep costs "
            f"{results['cold_overhead_pct']:+.2f}% over direct sweep_grid "
            f"(ceiling {OVERHEAD_CEILING * 100:.0f}%)"
        )
    results["failures"] = failures

    with open(args.output, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("facade overhead gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
