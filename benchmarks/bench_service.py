#!/usr/bin/env python
"""Latency probe of the async DSE query service: cold sweep vs cached query.

Three gates guard the serving layer (the PR-3 acceptance bar):

1. **Coalescing**: 32 concurrent identical sweep requests against a
   >= 10k-point grid must trigger exactly one underlying grid
   evaluation.
2. **Cached-query latency**: with a result cached, a ``pareto_front``
   query must answer in < 50 ms — *measured while a cold sweep of a
   larger grid is still running*, so the number reflects a loaded
   service, not an idle one.
3. **Cache speedup**: a cached sweep request must be far cheaper than
   the cold evaluation it memoized (sanity floor, not a tight gate).

Results are written to ``BENCH_service.json`` (cold/cached latencies,
grid sizes, coalescing counters) and uploaded as a CI artifact so the
serving-latency trajectory stays machine-readable across PRs.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_service.py          # full gate
    PYTHONPATH=src python benchmarks/bench_service.py --quick  # CI smoke

Exits non-zero when a gate is missed.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import time

from repro.core.dse import SweepGrid, sweep_grid
from repro.gpu.baseline import FHD_PIXELS
from repro.service import SweepService

#: the acceptance ceiling for a cached pareto_front query under load
CACHED_QUERY_CEILING_S = 0.050
#: concurrent identical requests that must coalesce into one evaluation
N_CONCURRENT = 32


def build_query_grid(quick: bool) -> SweepGrid:
    """The cached grid queries are answered from (>= 10k points full)."""
    return SweepGrid(
        scale_factors=(8, 16, 32, 64),
        pixel_counts=(FHD_PIXELS, 3840 * 2160),
        clocks_ghz=(0.8, 1.0, 1.2, 1.695) if quick else (0.8, 1.0, 1.2, 1.4, 1.695),
        grid_sram_kb=(512, 1024) if quick else (256, 512, 1024, 2048),
        n_engines=(8, 16) if quick else (4, 8, 16, 32),
        n_batches=(8, 16) if quick else (4, 8, 16, 32),
    )


def build_cold_grid(quick: bool) -> SweepGrid:
    """A bigger grid whose cold sweep overlaps the cached queries."""
    import numpy as np

    n_pixels = 4 if quick else 12
    return SweepGrid(
        scale_factors=(8, 16, 32, 64),
        pixel_counts=tuple(
            int(p) for p in np.linspace(100_000, 3840 * 2160, n_pixels)
        ),
        clocks_ghz=(0.6, 0.9, 1.2, 1.695, 2.0),
        grid_sram_kb=(256, 512, 1024, 2048),
        n_engines=(4, 8, 16, 32),
        n_batches=(4, 8, 16, 32),
    )


async def probe(quick: bool) -> dict:
    query_grid = build_query_grid(quick)
    cold_grid = build_cold_grid(quick)
    scheme = query_grid.schemes[0]

    # -- gate 1: coalescing ------------------------------------------------
    service = SweepService(engine="vectorized")
    start = time.perf_counter()
    await asyncio.gather(*(service.sweep(query_grid) for _ in range(N_CONCURRENT)))
    coalesced_wall_s = time.perf_counter() - start
    evaluations = service.evaluations
    coalesced = service.coalesced

    # -- cold-sweep baseline ----------------------------------------------
    start = time.perf_counter()
    await service.sweep(cold_grid)
    cold_sweep_s = time.perf_counter() - start

    # -- cached sweep latency ----------------------------------------------
    start = time.perf_counter()
    await service.sweep(cold_grid)
    cached_sweep_s = time.perf_counter() - start

    # -- gate 2: cached queries while a cold sweep runs --------------------
    # a fresh service so the big grid is cold again, with an artificial
    # floor on the cold evaluation so the overlap window is guaranteed
    def slow_cold(grid, engine="vectorized", ngpc=None, max_workers=None):
        result = sweep_grid(grid, engine="vectorized", ngpc=ngpc, use_cache=False)
        if grid.size >= cold_grid.size:
            time.sleep(0.5)
        return result

    loaded = SweepService(engine="vectorized", sweep_fn=slow_cold)
    await loaded.sweep(query_grid)  # warm the query grid
    cold_task = asyncio.ensure_future(loaded.sweep(cold_grid))
    await asyncio.sleep(0.1)  # the cold sweep is inside the executor now
    latencies = []
    for _ in range(10):
        start = time.perf_counter()
        front = await loaded.pareto_front(
            query_grid, scheme=scheme, n_pixels=FHD_PIXELS
        )
        latencies.append(time.perf_counter() - start)
        assert front, "pareto front must not be empty"
    overlapped = not cold_task.done()
    await cold_task
    cached_query_s = statistics.median(latencies)

    return {
        "query_grid_points": query_grid.size,
        "cold_grid_points": cold_grid.size,
        "n_concurrent": N_CONCURRENT,
        "evaluations": evaluations,
        "coalesced": coalesced,
        "coalesced_wall_s": coalesced_wall_s,
        "cold_sweep_s": cold_sweep_s,
        "cached_sweep_s": cached_sweep_s,
        "cached_query_s_p50": cached_query_s,
        "cached_query_s_max": max(latencies),
        "queries_overlapped_cold_sweep": overlapped,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--output", default="BENCH_service.json")
    args = parser.parse_args()

    results = asyncio.run(probe(args.quick))
    results["quick"] = args.quick

    print(f"query grid: {results['query_grid_points']:,} points, "
          f"cold grid: {results['cold_grid_points']:,} points")
    print(f"{results['n_concurrent']} concurrent identical sweeps -> "
          f"{results['evaluations']} evaluation(s), "
          f"{results['coalesced']} coalesced "
          f"({results['coalesced_wall_s'] * 1000:.1f} ms wall)")
    print(f"cold sweep:   {results['cold_sweep_s'] * 1000:10.1f} ms")
    print(f"cached sweep: {results['cached_sweep_s'] * 1000:10.3f} ms")
    print(f"cached pareto query under load: "
          f"{results['cached_query_s_p50'] * 1000:.2f} ms p50 "
          f"(max {results['cached_query_s_max'] * 1000:.2f} ms, "
          f"overlap={results['queries_overlapped_cold_sweep']})")

    failures = []
    if results["evaluations"] != 1:
        failures.append(
            f"coalescing gate: {results['evaluations']} evaluations for "
            f"{results['n_concurrent']} identical requests (want exactly 1)"
        )
    if not results["query_grid_points"] >= (1_000 if args.quick else 10_000):
        failures.append("query grid too small for the gate")
    if results["cached_query_s_p50"] >= CACHED_QUERY_CEILING_S:
        failures.append(
            f"latency gate: cached query took "
            f"{results['cached_query_s_p50'] * 1000:.2f} ms "
            f"(ceiling {CACHED_QUERY_CEILING_S * 1000:.0f} ms)"
        )
    if not results["queries_overlapped_cold_sweep"]:
        failures.append("cold sweep finished before the cached queries ran")
    if results["cached_sweep_s"] >= results["cold_sweep_s"]:
        failures.append("cached sweep not faster than the cold evaluation")
    results["failures"] = failures

    with open(args.output, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all service gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
