"""Section III headline: the 4K@60 performance gap (1.51x - 55.50x)."""

import pytest

from repro.analysis import get_experiment
from repro.gpu import performance_gap


def bench_perf_gap(benchmark, report):
    rows = benchmark(get_experiment("perf_gap").run)
    report("Section III performance gap (4K @ 60 FPS)", rows)
    # shape: NeRF has by far the largest gap; GIA meets the target
    assert performance_gap("nerf") > performance_gap("nsdf") > performance_gap("nvr")
    assert performance_gap("gia") < 1.0
    assert performance_gap("nerf") == pytest.approx(55.50, rel=0.02)
