"""Section II-A claim: parametric grid encodings beat fixed-function ones.

Trains the same GIA network with (a) the Table I hashgrid, (b) a
frequency (sin/cos) encoding, and (c) no encoding at all, for the same
number of steps, and compares reconstruction PSNR.  The paper cites this
strict ordering as the reason it studies parametric encodings only.
"""

from repro.apps import GIAApp
from repro.encodings import FrequencyEncoding, IdentityEncoding

STEPS = 120
BATCH = 1024
IMAGE = 48


def _train(encoding_override=None):
    app = GIAApp(image_size=IMAGE, seed=0, encoding_override=encoding_override)
    app.train(steps=STEPS, batch_size=BATCH)
    return app.evaluate_psnr()


def bench_encoding_quality_comparison(benchmark):
    def run():
        return {
            "hashgrid": _train(None),
            "frequency": _train(FrequencyEncoding(2, num_frequencies=10)),
            "identity": _train(IdentityEncoding(2)),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n  GIA reconstruction PSNR after "
          f"{STEPS} steps: "
          + ", ".join(f"{k}: {v:.1f} dB" for k, v in results.items()))
    # the paper's ordering: parametric > frequency > raw coordinates
    assert results["hashgrid"] > results["frequency"] > results["identity"]
    # and the parametric advantage is substantial
    assert results["hashgrid"] - results["frequency"] > 3.0
