#!/usr/bin/env python
"""NeRF: learn a synthetic radiance field and synthesize novel views.

Exercises the complete NeRF pipeline of the paper's Section III-1:
hashgrid-encoded positions feed the density MLP; its features plus
spherical-harmonics-encoded view directions feed the color MLP; pixels are
composited with classic volume rendering.  Training warm-starts with
direct field supervision, then fine-tunes through the differentiable
compositing stage (photometric ray loss), and finally novel views are
rendered and scored against the analytic ground truth.

Run:  python examples/nerf_novel_view.py
"""

import numpy as np

from repro.apps import NeRFApp
from repro.core import emulate
from repro.graphics import PinholeCamera, psnr
from repro.graphics.camera import look_at


def novel_view_camera(angle: float, size: int = 24) -> PinholeCamera:
    eye = (
        0.5 + 1.7 * np.cos(angle),
        0.85,
        0.5 + 1.7 * np.sin(angle),
    )
    return PinholeCamera.from_fov(size, size, 45.0, look_at(eye, (0.5, 0.5, 0.5)))


def main() -> None:
    app = NeRFApp(seed=0)
    print(f"NeRF parameters: {app.num_parameters:,} "
          f"(grid tables + density MLP + color MLP)")

    print("\n=== phase 1: direct field supervision ===")
    for step in range(120):
        result = app.train_step(batch_size=2048)
        if (step + 1) % 40 == 0:
            print(f"  step {result.step:4d}  loss {result.loss:.5f}")

    print("\n=== phase 2: photometric fine-tune through compositing ===")
    for step in range(30):
        result = app.train_step_rays(n_rays=256, n_samples=24)
        if (step + 1) % 10 == 0:
            print(f"  step {result.step:4d}  ray loss {result.loss:.5f}")

    print("\n=== novel view synthesis ===")
    for i, angle in enumerate(np.linspace(0, np.pi, 3)):
        cam = novel_view_camera(angle)
        rendered = app.render(cam, n_samples=32).rgb.reshape(
            cam.height, cam.width, 3
        )
        truth = app.render_ground_truth(cam, n_samples=32)
        print(f"  view {i} (azimuth {np.degrees(angle):5.1f} deg): "
              f"PSNR {psnr(rendered, truth):.2f} dB")

    print("\n=== what would this cost in real time? ===")
    base = emulate("nerf", "multi_res_hashgrid", 64, n_pixels=3840 * 2160)
    print(f"  4K frame on RTX 3090 baseline: {base.baseline_ms:8.1f} ms "
          f"({1000 / base.baseline_ms:.1f} FPS)")
    print(f"  4K frame on NGPC-64:           {base.accelerated_ms:8.1f} ms "
          f"({base.fps:.1f} FPS)  -> speedup {base.speedup:.1f}x")
    print(f"  (the paper: NGPC-64 enables 4K NeRF at 30 FPS)")


if __name__ == "__main__":
    main()
