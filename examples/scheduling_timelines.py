#!/usr/bin/env python
"""Visualize the execution schedules of Figs. 7 and 10-b.

Prints, for each application, the serialized GPU kernel schedule
(encoding -> MLP -> rest) next to the NGPC batch-pipelined schedule in
which the SMs run batch *i*'s fused rest kernels while the NGPC computes
batch *i+1* — the mechanism behind the end-to-end speedups of Fig. 12.

Run:  python examples/scheduling_timelines.py
"""

from repro.analysis.timeline import side_by_side
from repro.apps.params import APP_NAMES
from repro.core import validate_throughput_assumption


def main() -> None:
    for app in APP_NAMES:
        print(side_by_side(app, "multi_res_hashgrid", scale_factor=8))
        print()
    print("At larger scaling factors the NGPC lane shrinks until the fused")
    print("rest kernels become the bottleneck (the Amdahl limit):\n")
    print(side_by_side("nerf", "multi_res_hashgrid", scale_factor=64))

    throughput = validate_throughput_assumption()
    print(f"\nCycle-level check: the encoding pipeline sustains "
          f"{throughput:.3f} lookup sets/cycle with 8 SRAM banks "
          "(the analytic model assumes 1.0).")


if __name__ == "__main__":
    main()
