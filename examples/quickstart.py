#!/usr/bin/env python
"""Quickstart: train a neural graphics app and emulate its NGPC speedup.

This walks the full pipeline in under a minute:

1. Train a gigapixel-image-approximation (GIA) network — a multi-resolution
   hashgrid encoding feeding a fully fused MLP — on a procedural
   high-frequency image.
2. Reconstruct the image and report PSNR.
3. Ask the NGPC emulator what the same application costs on the GPU
   baseline and on NGPC-8 through NGPC-64.

Run:  python examples/quickstart.py
"""

from repro.analysis import format_table
from repro.api import Session
from repro.apps import GIAApp


def main() -> None:
    print("=== 1. Train GIA (hashgrid encoding -> fused MLP) ===")
    app = GIAApp(image_size=64, seed=0)
    print(f"trainable parameters: {app.num_parameters:,}")
    for step in range(200):
        result = app.train_step(batch_size=2048)
        if (step + 1) % 50 == 0:
            print(f"  step {result.step:4d}  loss {result.loss:.5f}")

    print("\n=== 2. Reconstruct and evaluate ===")
    psnr = app.evaluate_psnr()
    print(f"reconstruction PSNR: {psnr:.2f} dB")

    print("\n=== 3. Emulate on the NGPC accelerator ===")
    session = Session()  # the one typed entry point to the DSE space
    rows = []
    for scale in (8, 16, 32, 64):
        r = session.point(app="gia", scheme="multi_res_hashgrid",
                          scale_factor=scale)
        rows.append(
            [f"NGPC-{scale}", f"{r.baseline_ms:.2f}", f"{r.accelerated_ms:.3f}",
             f"{r.speedup:.1f}x", f"{r.fps:,.0f}"]
        )
    print(
        format_table(
            ["config", "GPU ms (FHD)", "NGPC ms", "speedup", "FPS"],
            rows,
            title="GIA, multi-resolution hashgrid, FHD frame",
        )
    )


if __name__ == "__main__":
    main()
