#!/usr/bin/env python
"""NGPC design-space exploration: the paper's evaluation in one script.

Sweeps all four applications, all three encodings and all four scaling
factors through the emulator (Fig. 12), prints the kernel-level engine
speedups (Fig. 13), the renderable resolutions (Fig. 14), and the
area/power bill (Fig. 15) with the Amdahl sanity check of Section VI.
The final section exercises the batched DSE engine through the
``repro.api`` Session facade: one ``session.sweep(...)`` call answers
the Pareto-front and "cheapest config meeting X FPS" queries an
architect actually asks — and the same two lines against
``Session.remote(...)`` would answer them from a running
``python -m repro serve``.

Run:  python examples/ngpc_design_space.py
"""

from repro.analysis import format_table
from repro.api import Grid, Session
from repro.apps.params import APP_NAMES, ENCODING_SCHEMES
from repro.calibration import paper
from repro.core import (
    NGPCConfig,
    amdahl_bound,
    emulate,
    encoding_kernel_speedup,
    mlp_kernel_speedup,
    ngpc_area_power,
)
from repro.core.emulator import max_pixels_within_budget, speedup_table

SCALES = (8, 16, 32, 64)


def fig12() -> None:
    for scheme in ENCODING_SCHEMES:
        table = speedup_table(scheme)
        rows = []
        for app in APP_NAMES:
            rows.append(
                [app]
                + [f"{table[s][app]:.1f}x" for s in SCALES]
                + [f"{amdahl_bound(app, scheme):.1f}x"]
            )
        rows.append(
            ["average"]
            + [f"{table[s]['average']:.2f}x" for s in SCALES]
            + ["-"]
        )
        rows.append(
            ["paper avg"]
            + [f"{paper.FIG12_AVERAGE_SPEEDUPS[scheme][s]}x" for s in SCALES]
            + ["-"]
        )
        print(
            format_table(
                ["app", "NGPC-8", "NGPC-16", "NGPC-32", "NGPC-64", "Amdahl"],
                rows,
                title=f"\nFig. 12 — end-to-end speedup, {scheme}",
            )
        )


def fig13() -> None:
    rows = []
    for scheme in ENCODING_SCHEMES:
        enc = sum(encoding_kernel_speedup(a, scheme, 64) for a in APP_NAMES) / 4
        mlp = sum(mlp_kernel_speedup(a, scheme, 64) for a in APP_NAMES) / 4
        ref = paper.FIG13_KERNEL_SPEEDUPS_AT_64[scheme]
        rows.append(
            [scheme, f"{enc:.0f}x", f"{ref['encoding']:.0f}x",
             f"{mlp:.0f}x", f"{ref['mlp']:.0f}x"]
        )
    print(
        format_table(
            ["scheme", "enc (ours)", "enc (paper)", "mlp (ours)", "mlp (paper)"],
            rows,
            title="\nFig. 13 — kernel-level engine speedups at scale 64",
        )
    )


def fig14() -> None:
    rows = []
    for app in APP_NAMES:
        cells = [app]
        for fps in paper.FPS_TARGETS:
            px = max_pixels_within_budget(app, "multi_res_hashgrid", 64, fps)
            name = "-"
            for res, count in sorted(paper.RESOLUTIONS.items(), key=lambda kv: kv[1]):
                if px >= count:
                    name = res
            cells.append(f"{px / 1e6:.1f}M ({name})")
        rows.append(cells)
    print(
        format_table(
            ["app", "30 FPS", "60 FPS", "90 FPS", "120 FPS"],
            rows,
            title="\nFig. 14 — renderable pixels on NGPC-64, hashgrid",
        )
    )


def fig15() -> None:
    rows = []
    for scale in SCALES:
        r = ngpc_area_power(NGPCConfig(scale_factor=scale))
        rows.append(
            [f"NGPC-{scale}", f"{r.area_mm2_7nm:.1f}", f"{r.area_overhead_pct:.2f}%",
             f"{r.power_w_7nm:.1f}", f"{r.power_overhead_pct:.2f}%"]
        )
    print(
        format_table(
            ["config", "area mm2 (7nm)", "vs 3090 die", "power W", "vs 3090 TDP"],
            rows,
            title="\nFig. 15 — NGPC area & power",
        )
    )


def amdahl_check() -> None:
    violations = 0
    runs = 0
    for scheme in ENCODING_SCHEMES:
        for app in APP_NAMES:
            for scale in SCALES:
                runs += 1
                if not emulate(app, scheme, scale).respects_amdahl():
                    violations += 1
    print(f"\nAmdahl sanity check: {runs} emulator runs, {violations} violations")


def dse_queries() -> None:
    """The Session facade: whole design space in one call, then queries."""
    session = Session()  # local backend; Session.remote(...) is a drop-in
    sweep = session.sweep(
        Grid()
        .app(*APP_NAMES)
        .scheme("multi_res_hashgrid")
        .scale(*SCALES)
        .pixels(paper.RESOLUTIONS["fhd"], paper.RESOLUTIONS["4k"])
    )
    print(f"\nBatched DSE — {sweep.size} design points in one call")

    front = sweep.pareto(n_pixels=paper.RESOLUTIONS["fhd"])
    rows = [
        [f"NGPC-{p.scale_factor}", f"{p.area_overhead_pct:.2f}%",
         f"{p.average_speedup:.2f}x", f"{p.speedup_per_area_pct:.2f}"]
        for p in front
    ]
    print(format_table(
        ["config", "area", "avg speedup", "speedup/area%"],
        rows,
        title="Pareto front (area vs average speedup, FHD)",
    ))

    rows = []
    for app in APP_NAMES:
        cells = [app]
        for res in ("fhd", "4k"):
            hit = sweep.cheapest(app=app, fps=60.0,
                                 n_pixels=paper.RESOLUTIONS[res])
            cells.append(
                f"NGPC-{hit.scale_factor} (+{hit.area_overhead_pct:.1f}%)"
                if hit else "not achievable"
            )
        rows.append(cells)
    print(format_table(
        ["app", "FHD @ 60 FPS", "4K @ 60 FPS"],
        rows,
        title="\nCheapest configuration meeting 60 FPS",
    ))


def main() -> None:
    fig12()
    fig13()
    fig14()
    fig15()
    amdahl_check()
    dse_queries()


if __name__ == "__main__":
    main()
