#!/usr/bin/env python
"""The AR/VR question: how far is neural graphics from a 1-watt budget?

Section I of the paper notes a 2-4 order-of-magnitude gap between the
performance AR/VR needs and the system power it can spend.  This example
quantifies that gap per application on the GPU baseline, then shows how
much of it NGPC closes (and how much remains).

Run:  python examples/arvr_power_budget.py
"""

from repro.analysis import format_table
from repro.apps.params import APP_NAMES
from repro.core import arvr_gap_oom, energy_per_frame


def main() -> None:
    print("Target: 60 FPS within a 1 W rendering budget (AR glasses).\n")
    rows = []
    for app in APP_NAMES:
        gpu_gap = arvr_gap_oom(app)
        ngpc_gap = arvr_gap_oom(app, scale_factor=64)
        energy = energy_per_frame(app, "multi_res_hashgrid", 64)
        rows.append(
            [
                app,
                f"{gpu_gap:.2f} OOM",
                f"{ngpc_gap:.2f} OOM",
                f"{energy.baseline_mj:,.0f}",
                f"{energy.accelerated_mj:,.1f}",
                f"{energy.efficiency_gain:.1f}x",
            ]
        )
    print(
        format_table(
            ["app", "GPU gap", "GPU+NGPC-64 gap", "GPU mJ/frame",
             "NGPC mJ/frame", "perf/W gain"],
            rows,
            title="AR/VR power-efficiency gap (FHD, hashgrid encoding)",
        )
    )
    print(
        "\nReading: the paper reports a 2-4 OOM gap on the GPU; NGPC "
        "improves performance-per-watt by 1-2 OOM but a dedicated "
        "low-power design is still required for 1 W AR glasses."
    )


if __name__ == "__main__":
    main()
