#!/usr/bin/env python
"""NVR: learn a reflectance volume once, then relight it.

The point of NVR learning *reflectance* instead of emission
(Section III-4): the learned field is independent of the light, so the
renderer can move the light without retraining.  This example trains the
Table I NVR network, then renders the same view under three light
directions and shows that brightness follows the light while the learned
field stays fixed.

Run:  python examples/nvr_relighting.py
"""

import numpy as np

from repro.apps import NVRApp
from repro.core import emulate
from repro.graphics import PinholeCamera
from repro.graphics.camera import look_at


def main() -> None:
    app = NVRApp(seed=0)
    print(f"NVR parameters: {app.num_parameters:,} "
          "(one fused MLP: density logit + albedo)")

    print("\n=== training the reflectance field ===")
    for step in range(150):
        result = app.train_step(batch_size=2048)
        if (step + 1) % 50 == 0:
            print(f"  step {result.step:4d}  loss {result.loss:.5f}")

    cam = PinholeCamera.from_fov(
        24, 24, 45.0, look_at((0.5, 0.6, 2.1), (0.5, 0.5, 0.5))
    )

    print("\n=== relighting: same field, three light directions ===")
    base_light = app.scene.LIGHT_DIR.copy()
    pts = np.random.default_rng(0).uniform(0, 1, (512, 3)).astype(np.float32)
    _, albedo_before, _ = app.query(pts)
    for name, light in [
        ("front", base_light),
        ("top", np.array([0.0, 1.0, 0.0])),
        ("back", -base_light),
    ]:
        app.scene.LIGHT_DIR = light / np.linalg.norm(light)
        image = app.render(cam, n_samples=24).rgb
        print(f"  light {name:5s}: mean brightness {image.mean():.4f}")
    app.scene.LIGHT_DIR = base_light
    _, albedo_after, _ = app.query(pts)
    unchanged = np.array_equal(albedo_before, albedo_after)
    print(f"\nlearned albedo field unchanged across relights: {unchanged}")

    r = emulate("nvr", "multi_res_hashgrid", 64, n_pixels=7680 * 4320)
    print(f"\n8K NVR frame: baseline {r.baseline_ms:.1f} ms -> "
          f"NGPC-64 {r.accelerated_ms:.2f} ms ({r.fps:.0f} FPS; "
          "the paper: 8K at 120 FPS)")


if __name__ == "__main__":
    main()
