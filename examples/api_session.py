#!/usr/bin/env python
"""The ``repro.api`` Session facade end to end: local, then remote.

One typed entry point answers every design-space question the
reproduction can pose, whatever executes it:

1. Build a design space fluently (``Grid().app(...).clock(0.8, 1.2, n=5)``).
2. Sweep it on a local session (the batched engines pick themselves).
3. Query the handle: Pareto front, cheapest-config-meeting-FPS, one point.
4. Start the sweep service in-process and repeat the *same* queries on a
   remote session over one keep-alive HTTP connection — then prove the
   answers are bit-identical and show the server's reuse counters.

Run:  python examples/api_session.py
"""

import asyncio
import threading

import numpy as np

from repro.analysis import format_table
from repro.api import Grid, Session


def build_grid() -> Grid:
    return (
        Grid()
        .app("nerf", "gia")
        .scheme("multi_res_hashgrid")
        .scale(8, 16, 32, 64)
        .clock(0.8, 1.695, n=4)
        .sram(512, 1024)
    )


def show_queries(session: Session, label: str):
    sweep = session.sweep(build_grid())
    print(f"\n=== {label}: {sweep.size} design points "
          f"(backend={sweep.backend}) ===")

    front = sweep.pareto()
    rows = [
        [p.describe(), f"{p.area_overhead_pct:.2f}%",
         f"{p.average_speedup:.2f}x"]
        for p in front[:6]
    ]
    print(format_table(
        ["config", "area", "avg speedup"],
        rows,
        title=f"Pareto front (first {len(rows)} of {len(front)} configs)",
    ))

    hit = sweep.cheapest(app="nerf", fps=60.0)
    print("cheapest NeRF @ 60 FPS:",
          hit.describe() if hit else "not achievable")

    point = sweep.point(app="nerf", scale_factor=8, clock_ghz=0.8,
                        grid_sram_kb=512)
    print(f"one point: NGPC-8 @ 0.8 GHz / 512 KB -> "
          f"{point.speedup:.2f}x ({point.fps:,.0f} FPS)")
    return sweep


def main() -> None:
    # -- 1+2+3: the local session ------------------------------------------
    local = Session()
    local_sweep = show_queries(local, "Local session")

    # -- 4: the same queries against a live service ------------------------
    from repro.service import SweepService, start_http_server

    started = threading.Event()
    holder = {}

    def serve():
        async def run():
            server = await start_http_server(
                SweepService(engine="vectorized"), "127.0.0.1", 0
            )
            holder["port"] = server.port
            holder["stop"] = asyncio.Event()
            holder["loop"] = asyncio.get_running_loop()
            started.set()
            await holder["stop"].wait()
            await server.close()

        asyncio.run(run())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    started.wait(timeout=10)

    with Session.remote(port=holder["port"]) as remote:
        remote_sweep = show_queries(remote, "Remote session")
        remote.sweep(build_grid())  # a second request: served from cache
        stats = remote.stats()

    np.testing.assert_array_equal(
        remote_sweep.result.accelerated_ms, local_sweep.result.accelerated_ms
    )
    print("\nlocal and remote arrays are bit-identical")
    print(f"service: {stats['evaluations']} evaluation(s), "
          f"http={stats['http']} (keep-alive reuses counted server-side)")

    holder["loop"].call_soon_threadsafe(holder["stop"].set)
    thread.join(timeout=10)


if __name__ == "__main__":
    main()
