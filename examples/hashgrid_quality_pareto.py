#!/usr/bin/env python
"""Hash-grid quality-vs-area Pareto sweep over the new encoding axes.

The axis registry's proof-of-life, end to end: sweep Instant-NGP-style
hash-table sizes (``log2_hashmap_size`` = T) and per-level growth
factors (b) through the batched engine, price each table size in die
area (hash entries cost grid SRAM), score it with the analytic
collision-rate quality proxy, and print the non-dominated
(area, quality) configurations plus the timing/training answers the
same sweep already holds.

Run:  python examples/hashgrid_quality_pareto.py
"""

from repro.analysis import format_table
from repro.api import Grid, Session
from repro.apps.evaluation import hash_collision_rate_batch
from repro.apps.params import get_config
from repro.core.area_power import hashgrid_area_power_batch, hashmap_sram_kb
from repro.core.dse import pareto_front

APP = "nerf"
SCHEME = "multi_res_hashgrid"
LOG2_TABLE_SIZES = (14, 16, 18, 19, 20, 22)
LEVEL_SCALES = (1.5, 2.0)


def main() -> None:
    # one batched evaluation covers every (T, b) encoding variant
    sweep = Session().sweep(
        Grid()
        .app(APP)
        .scheme(SCHEME)
        .scale(8)
        .gridtype("hash")
        .hashmap(*LOG2_TABLE_SIZES)
        .level_scale(*LEVEL_SCALES)
    )
    result = sweep.result
    grid = result.grid

    # quality side: analytic collision rate per (gridtype, T, b)
    collisions = hash_collision_rate_batch(
        get_config(APP, SCHEME),
        grid.gridtypes, grid.log2_hashmap_sizes, grid.per_level_scales,
    )
    # cost side: each table size priced at the SRAM capacity it needs
    cost = hashgrid_area_power_batch((8,), grid.log2_hashmap_sizes)
    srams = hashmap_sram_kb(grid.log2_hashmap_sizes)

    for r, level_scale in enumerate(grid.per_level_scales):
        areas = [float(cost["area_mm2_7nm"][0, 0, h, 0])
                 for h in range(len(grid.log2_hashmap_sizes))]
        quality = [1.0 - float(collisions[0, h, r])
                   for h in range(len(grid.log2_hashmap_sizes))]
        front = set(pareto_front(areas, quality))
        rows = []
        for h, log2_t in enumerate(grid.log2_hashmap_sizes):
            point = sweep.point(
                app=APP, scale_factor=8, log2_hashmap_size=log2_t,
                per_level_scale=level_scale,
            )
            rows.append([
                f"T=2^{log2_t}",
                f"{int(srams[h])} KB",
                f"{areas[h]:.2f} mm2",
                f"{100.0 * (1.0 - quality[h]):.1f}%",
                f"{point.speedup:.1f}x",
                "yes" if h in front else "no",
            ])
        print(format_table(
            ["table", "grid SRAM", "NGPC-8 area", "collisions",
             "speedup", "Pareto"],
            rows,
            title=(f"\nHash-grid quality vs area — {APP}, "
                   f"per-level scale b={level_scale:g}"),
        ))

    # the same sweep answers training-throughput queries — pin an
    # encoding variant (selectors work like any other swept axis) and
    # ask for the cheapest configuration meeting a step-rate floor
    hit = sweep.cheapest(
        app=APP, train_steps_per_s=1.0,
        gridtype="hash", log2_hashmap_size=19, per_level_scale=2.0,
    )
    print(
        f"\ncheapest config training at >= 1 step/s with T=2^19, b=2: "
        f"NGPC-{hit.scale_factor} "
        f"({hit.area_overhead_pct:.2f}% area overhead, "
        f"{hit.average_speedup:.1f}x speedup)"
    )


if __name__ == "__main__":
    main()
