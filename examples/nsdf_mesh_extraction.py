#!/usr/bin/env python
"""NSDF -> triangle mesh: 3D modeling with a neural SDF.

Trains the NSDF network, extracts a triangle mesh from the *learned*
field with marching tetrahedra, compares it against the mesh of the
analytic ground-truth scene, and writes both as Wavefront OBJ files.

Run:  python examples/nsdf_mesh_extraction.py
"""

import os

import numpy as np

from repro.apps import NSDFApp
from repro.graphics import marching_tetrahedra


def main() -> None:
    app = NSDFApp(seed=0)
    print("=== training the neural SDF ===")
    for step in range(150):
        result = app.train_step(batch_size=2048)
        if (step + 1) % 50 == 0:
            print(f"  step {result.step:4d}  loss {result.loss:.5f}")

    print("\n=== extracting meshes (marching tetrahedra, 28^3 cells) ===")
    truth_mesh = marching_tetrahedra(app.scene, resolution=28)
    neural_mesh = marching_tetrahedra(
        lambda p: app.predict(p.astype(np.float32)), resolution=28
    )
    print(f"  ground truth: {truth_mesh.n_vertices:6,} vertices, "
          f"{truth_mesh.n_faces:6,} faces, area {truth_mesh.surface_area():.4f}")
    print(f"  neural SDF:   {neural_mesh.n_vertices:6,} vertices, "
          f"{neural_mesh.n_faces:6,} faces, area {neural_mesh.surface_area():.4f}")
    rel = abs(neural_mesh.surface_area() - truth_mesh.surface_area())
    rel /= truth_mesh.surface_area()
    print(f"  surface-area error: {rel:.1%}")

    out_dir = os.path.join(os.path.dirname(__file__), "out")
    os.makedirs(out_dir, exist_ok=True)
    for name, mesh in (("truth", truth_mesh), ("neural", neural_mesh)):
        path = os.path.join(out_dir, f"nsdf_{name}.obj")
        with open(path, "w") as f:
            f.write(mesh.to_obj())
        print(f"  wrote {path}")


if __name__ == "__main__":
    main()
