#!/usr/bin/env python
"""NSDF: learn a signed distance field and render it by sphere tracing.

Trains the Table I NSDF network (hashgrid encoding -> 4x64 fused MLP ->
signed distance) against an analytic CSG scene, then sphere-traces the
*neural* field to produce a shaded ASCII rendering, and compares surface
accuracy against the ground truth.

Run:  python examples/nsdf_sphere_tracing.py
"""

import numpy as np

from repro.apps import NSDFApp
from repro.core import emulate
from repro.graphics import PinholeCamera, generate_rays, sdf_normal, sphere_trace
from repro.graphics.camera import look_at

SHADES = " .:-=+*#%@"


def ascii_render(app: NSDFApp, size: int = 48) -> str:
    cam = PinholeCamera.from_fov(
        size, size // 2, 40.0, look_at((0.0, 0.5, 1.3), (0.0, 0.0, 0.0))
    )
    result = app.render(camera=cam, max_steps=48)
    light = np.array([0.4, 0.8, 0.45])
    light = light / np.linalg.norm(light)
    rows = []
    hit = result.hit.reshape(cam.height, cam.width)
    pts = result.points.reshape(cam.height, cam.width, 3)
    for y in range(cam.height):
        row = []
        for x in range(cam.width):
            if not hit[y, x]:
                row.append(" ")
                continue
            n = sdf_normal(app.scene, pts[y, x][None, :])[0]
            shade = max(0.0, float(n @ light))
            row.append(SHADES[min(int(shade * (len(SHADES) - 1)), len(SHADES) - 1)])
        rows.append("".join(row))
    return "\n".join(rows)


def main() -> None:
    app = NSDFApp(seed=0)
    print(f"NSDF parameters: {app.num_parameters:,}")

    print("\n=== training against the analytic CSG scene ===")
    for step in range(150):
        result = app.train_step(batch_size=2048)
        if (step + 1) % 50 == 0:
            mae = app.evaluate_mae(n_points=1024)
            print(f"  step {result.step:4d}  loss {result.loss:.5f}  "
                  f"volume MAE {mae:.4f}")

    print("\n=== sphere tracing the NEURAL field ===")
    print(ascii_render(app))

    cam = PinholeCamera.from_fov(
        32, 32, 40.0, look_at((0.0, 0.5, 1.3), (0.0, 0.0, 0.0))
    )
    neural = app.render(camera=cam, max_steps=48)
    truth = sphere_trace(app.scene, generate_rays(cam), t_max=4.0)
    agree = float(np.mean(neural.hit == truth.hit))
    print(f"\nhit-mask agreement with ground truth: {agree:.1%}")
    both = neural.hit & truth.hit
    if both.any():
        depth_err = float(np.mean(np.abs(neural.t[both] - truth.t[both])))
        print(f"mean surface-depth error on shared hits: {depth_err:.4f}")

    r = emulate("nsdf", "multi_res_hashgrid", 64, n_pixels=7680 * 4320)
    print(f"\n8K NSDF frame: baseline {r.baseline_ms:.1f} ms -> "
          f"NGPC-64 {r.accelerated_ms:.2f} ms ({r.fps:.0f} FPS)")


if __name__ == "__main__":
    main()
