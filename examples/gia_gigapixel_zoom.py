#!/usr/bin/env python
"""GIA as a zoomable gigapixel viewer.

Once trained, the GIA network replaces the image: any window at any
output resolution is just a batch of coordinate queries.  This example
trains on a procedural high-frequency image, then "zooms" into a corner
through three magnification levels, reporting the reconstruction quality
at each level and the effective output rate.

Run:  python examples/gia_gigapixel_zoom.py
"""

import time

import numpy as np

from repro.apps import GIAApp
from repro.graphics import psnr
from repro.graphics.image import sample_image_bilinear


def region_ground_truth(app, x0, y0, x1, y1, height, width):
    ys, xs = np.meshgrid(
        y0 + (np.arange(height) + 0.5) / height * (y1 - y0),
        x0 + (np.arange(width) + 0.5) / width * (x1 - x0),
        indexing="ij",
    )
    coords = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(np.float32)
    return sample_image_bilinear(app.image, coords).reshape(height, width, 3)


def main() -> None:
    print("=== training GIA on a 96x96 procedural image ===")
    app = GIAApp(image_size=96, seed=0)
    for step in range(250):
        result = app.train_step(batch_size=2048)
        if (step + 1) % 50 == 0:
            print(f"  step {result.step:4d}  loss {result.loss:.6f}")
    print(f"full-image PSNR: {app.evaluate_psnr():.2f} dB")

    print("\n=== zooming into the top-left corner ===")
    windows = [
        ("1x (full image)", 0.0, 0.0, 1.0, 1.0),
        ("4x", 0.0, 0.0, 0.25, 0.25),
        ("16x", 0.0, 0.0, 0.0625, 0.0625),
    ]
    size = 64
    for name, x0, y0, x1, y1 in windows:
        start = time.perf_counter()
        rendered = app.render_region(x0, y0, x1, y1, size, size)
        elapsed = time.perf_counter() - start
        truth = region_ground_truth(app, x0, y0, x1, y1, size, size)
        rate = size * size / elapsed / 1e3
        print(f"  {name:16s}: PSNR {psnr(rendered, truth):6.2f} dB, "
              f"{rate:,.0f} Kpixel/s")
    print("\nThe window shrinks 16x while the output resolution stays "
          "fixed — the network serves every zoom level from the same "
          f"{app.num_parameters:,} parameters.")


if __name__ == "__main__":
    main()
